// Differential tests for the production Zhang–Shasha implementation: an
// independent O(n^4) memoized oracle (ted/naive_ted.h) must agree with it
// on random pairs and on the adversarial shapes that stress the keyroot
// decomposition (spines, combs, stars — extreme depth/leaves mixes). The
// mapping and script layers are cross-checked against the distance on the
// same inputs: an optimal mapping costs exactly EDist and a synthesized
// script has exactly that many operations. The bounded verifier is swept
// across thresholds bracketing the true distance on every pair: exact when
// the distance fits, provably "> tau" when it does not.
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "ted/bounded_ted.h"
#include "ted/edit_mapping.h"
#include "ted/edit_script_synthesis.h"
#include "ted/naive_ted.h"
#include "ted/zhang_shasha.h"
#include "test_util.h"
#include "tree/tree.h"
#include "util/random.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::RandomTree;

constexpr uint64_t kSeed = 1989;  // Zhang & Shasha publication year

/// Checks every layer against the oracle on one pair.
void CheckPair(const Tree& t1, const Tree& t2) {
  const int naive = NaiveTreeEditDistance(t1, t2);
  const int zs = TreeEditDistance(t1, t2);
  ASSERT_EQ(zs, naive) << "|T1|=" << t1.size() << " |T2|=" << t2.size();

  const EditMapping mapping = ComputeEditMapping(t1, t2);
  EXPECT_EQ(mapping.cost, zs);
  EXPECT_EQ(ValidateEditMapping(t1, t2, mapping), "");
  EXPECT_EQ(mapping.cost,
            mapping.relabels + mapping.deletions + mapping.insertions);

  const StatusOr<std::vector<EditOperation>> script =
      ComputeEditScript(t1, t2);
  if (script.ok()) {
    EXPECT_EQ(static_cast<int>(script.value().size()), zs);
  } else {
    // The operation set cannot touch roots (edit_script_synthesis.h);
    // any other failure is a bug.
    EXPECT_EQ(script.status().code(), StatusCode::kUnimplemented)
        << script.status();
  }

  // Bounded verifier versus the oracle, at thresholds bracketing the true
  // distance plus the degenerate extremes. The contract: exact whenever
  // naive <= tau, strictly above tau otherwise.
  const int taus[] = {0, naive - 1, naive, naive + 1, t1.size() + t2.size(),
                      std::numeric_limits<int>::max()};
  for (const int tau : taus) {
    const int bounded = BoundedTreeEditDistance(t1, t2, tau);
    if (naive <= tau) {
      EXPECT_EQ(bounded, naive) << "tau=" << tau << " |T1|=" << t1.size()
                                << " |T2|=" << t2.size();
    } else {
      EXPECT_GT(bounded, tau) << "tau=" << tau << " |T1|=" << t1.size()
                              << " |T2|=" << t2.size();
    }
  }
}

TEST(TedDifferentialTest, RandomPairsAgreeWithNaiveOracle) {
  auto labels = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(labels, 4);
  Rng rng(kSeed);
  for (int i = 0; i < 150; ++i) {
    const int size1 = 1 + static_cast<int>(rng.UniformIndex(12));
    const int size2 = 1 + static_cast<int>(rng.UniformIndex(12));
    CheckPair(RandomTree(size1, pool, labels, rng),
              RandomTree(size2, pool, labels, rng));
  }
}

TEST(TedDifferentialTest, SingleLabelPairsAgree) {
  // Label-free agreement isolates the structural part of the recurrence
  // (all relabels are free, only insert/delete cost).
  auto labels = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(labels, 1);
  Rng rng(kSeed + 1);
  for (int i = 0; i < 60; ++i) {
    const int size1 = 1 + static_cast<int>(rng.UniformIndex(10));
    const int size2 = 1 + static_cast<int>(rng.UniformIndex(10));
    CheckPair(RandomTree(size1, pool, labels, rng),
              RandomTree(size2, pool, labels, rng));
  }
}

/// A chain of `size` nodes (each node the only child of the previous) —
/// maximal depth, a single keyroot path.
Tree Spine(int size, const std::vector<LabelId>& pool,
           const std::shared_ptr<LabelDictionary>& labels) {
  TreeBuilder builder(labels);
  builder.AddRootId(pool[0]);
  for (int i = 1; i < size; ++i) {
    builder.AddChildId(static_cast<NodeId>(i - 1),
                       pool[static_cast<size_t>(i) % pool.size()]);
  }
  return std::move(builder).Build();
}

/// A root with `size - 1` leaf children — maximal fanout, every child a
/// keyroot except the first.
Tree Star(int size, const std::vector<LabelId>& pool,
          const std::shared_ptr<LabelDictionary>& labels) {
  TreeBuilder builder(labels);
  builder.AddRootId(pool[0]);
  for (int i = 1; i < size; ++i) {
    builder.AddChildId(0, pool[static_cast<size_t>(i) % pool.size()]);
  }
  return std::move(builder).Build();
}

/// A spine whose every node also carries one leaf — depth AND leaves both
/// linear in size (worst case for min(depth, leaves) based bounds).
Tree Comb(int teeth, const std::vector<LabelId>& pool,
          const std::shared_ptr<LabelDictionary>& labels) {
  TreeBuilder builder(labels);
  builder.AddRootId(pool[0]);
  NodeId spine = 0;
  for (int i = 0; i < teeth; ++i) {
    builder.AddChildId(spine, pool[1 % pool.size()]);
    spine = builder.AddChildId(spine, pool[static_cast<size_t>(i + 2) %
                                           pool.size()]);
  }
  return std::move(builder).Build();
}

TEST(TedDifferentialTest, AdversarialShapesAgreeWithNaiveOracle) {
  auto labels = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(labels, 3);
  const std::vector<Tree> shapes = [&] {
    std::vector<Tree> s;
    s.push_back(Spine(10, pool, labels));
    s.push_back(Spine(7, pool, labels));
    s.push_back(Star(10, pool, labels));
    s.push_back(Star(6, pool, labels));
    s.push_back(Comb(4, pool, labels));  // 9 nodes
    s.push_back(Comb(5, pool, labels));  // 11 nodes
    return s;
  }();
  for (size_t i = 0; i < shapes.size(); ++i) {
    for (size_t j = 0; j < shapes.size(); ++j) {
      CheckPair(shapes[i], shapes[j]);
    }
  }
}

TEST(TedDifferentialTest, ShapeVersusRandomAgree) {
  auto labels = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(labels, 3);
  Rng rng(kSeed + 2);
  for (int i = 0; i < 20; ++i) {
    const Tree random =
        RandomTree(1 + static_cast<int>(rng.UniformIndex(11)), pool, labels,
                   rng);
    CheckPair(Spine(8, pool, labels), random);
    CheckPair(Star(8, pool, labels), random);
    CheckPair(Comb(3, pool, labels), random);
  }
}

TEST(TedDifferentialTest, PrecomputedViewMatchesConvenienceOverload) {
  // TedTree::FromTree is the per-database precomputation path the search
  // engine uses; it must agree with the build-both-views overload.
  auto labels = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(labels, 3);
  Rng rng(kSeed + 3);
  for (int i = 0; i < 40; ++i) {
    const Tree t1 =
        RandomTree(1 + static_cast<int>(rng.UniformIndex(12)), pool, labels,
                   rng);
    const Tree t2 =
        RandomTree(1 + static_cast<int>(rng.UniformIndex(12)), pool, labels,
                   rng);
    const TedTree v1 = TedTree::FromTree(t1);
    const TedTree v2 = TedTree::FromTree(t2);
    EXPECT_EQ(TreeEditDistance(v1, v2), TreeEditDistance(t1, t2));
    // The distance matrix's final entry is the overall distance.
    const std::vector<int> matrix = TreeDistanceMatrix(v1, v2);
    ASSERT_EQ(matrix.size(),
              static_cast<size_t>(v1.size()) * static_cast<size_t>(v2.size()));
    EXPECT_EQ(matrix.back(), TreeEditDistance(t1, t2));
  }
}

}  // namespace
}  // namespace treesim
