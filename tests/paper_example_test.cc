// End-to-end walkthrough of the paper's running example (Figures 1-3 and the
// Section 4.2 positional discussion), checked against every layer of the
// library at once. T1 and T2 are the trees of Fig. 1; their normalized
// binary representations, branch vectors and positions are given in
// Figs. 2-3.
#include <memory>

#include "gtest/gtest.h"
#include "core/binary_tree.h"
#include "core/branch_profile.h"
#include "core/inverted_file.h"
#include "core/positional.h"
#include "filters/bibranch_filter.h"
#include "filters/histogram_filter.h"
#include "search/similarity_search.h"
#include "ted/naive_ted.h"
#include "ted/zhang_shasha.h"
#include "test_util.h"
#include "tree/traversal.h"

namespace treesim {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dict_ = std::make_shared<LabelDictionary>();
    t1_ = testing::MakeTree("a{b{c d} b{c d} e}", dict_);
    t2_ = testing::MakeTree("a{b{c d b{e}} c d e}", dict_);
  }

  std::shared_ptr<LabelDictionary> dict_;
  Tree t1_, t2_;
};

TEST_F(PaperExampleTest, TreeSizesMatchFig1) {
  EXPECT_EQ(t1_.size(), 8);
  EXPECT_EQ(t2_.size(), 9);
}

TEST_F(PaperExampleTest, EditDistanceIsThree) {
  // One delete (the second b of T1) + two inserts (b' under the first b,
  // e under b') transform T1 into T2; the mapping argument shows no
  // two-operation script exists.
  const int d = TreeEditDistance(t1_, t2_);
  EXPECT_EQ(d, 3);
  EXPECT_EQ(NaiveTreeEditDistance(t1_, t2_), d);
}

TEST_F(PaperExampleTest, BinaryTreeSizesMatchFig2) {
  const NormalizedBinaryTree b1 = NormalizedBinaryTree::FromTree(t1_);
  const NormalizedBinaryTree b2 = NormalizedBinaryTree::FromTree(t2_);
  EXPECT_EQ(b1.original_count(), 8);
  EXPECT_EQ(b1.epsilon_count(), 9);
  EXPECT_EQ(b2.original_count(), 9);
  EXPECT_EQ(b2.epsilon_count(), 10);
}

TEST_F(PaperExampleTest, BranchVectorsAndDistanceMatchFig3) {
  BranchDictionary branches(2);
  const BranchProfile p1 = BranchProfile::FromTree(t1_, branches);
  const BranchProfile p2 = BranchProfile::FromTree(t2_, branches);
  // Fig. 3(b) vectors have 6 and 7 non-zero dimensions and L1 distance 9.
  EXPECT_EQ(p1.entries.size(), 6u);
  EXPECT_EQ(p2.entries.size(), 7u);
  EXPECT_EQ(BranchDistance(p1, p2), 9);
  // Theorem 3.2: BDist <= 5 * EDist (9 <= 15).
  EXPECT_LE(BranchDistance(p1, p2), 5 * TreeEditDistance(t1_, t2_));
  // The plain lower bound: ceil(9/5) = 2 <= EDist = 3.
  EXPECT_EQ(BranchDistanceLowerBound(p1, p2), 2);
}

TEST_F(PaperExampleTest, PositionalBoundIsTighterHere) {
  BranchDictionary branches(2);
  const BranchProfile p1 = BranchProfile::FromTree(t1_, branches);
  const BranchProfile p2 = BranchProfile::FromTree(t2_, branches);
  const int propt = OptimisticBound(p1, p2, MatchingMode::kExact);
  EXPECT_GE(propt, BranchDistanceLowerBound(p1, p2));
  EXPECT_LE(propt, TreeEditDistance(t1_, t2_));
}

TEST_F(PaperExampleTest, QLevelDistancesGrowWithQ) {
  int64_t prev = -1;
  for (int q = 2; q <= 4; ++q) {
    BranchDictionary branches(q);
    const int64_t d = BranchDistance(BranchProfile::FromTree(t1_, branches),
                                     BranchProfile::FromTree(t2_, branches));
    EXPECT_LE(d, static_cast<int64_t>(branches.edit_distance_factor()) *
                     TreeEditDistance(t1_, t2_));
    if (prev >= 0) {
      EXPECT_GE(d, prev);
    }
    prev = d;
  }
}

TEST_F(PaperExampleTest, SearchFindsT2FromT1) {
  auto db = std::make_unique<TreeDatabase>(dict_);
  db->Add(t1_);
  db->Add(t2_);
  // A decoy far from both (label-disjoint and of comparable size, so only
  // the branch filter — not the trivial size bound — can prune it:
  // PosBDist(3) = 8 + 9 = 17 > 5 * 3).
  db->Add(testing::MakeTree("x{y z w v u t s r}", dict_));

  SimilaritySearch engine(db.get(), std::make_unique<BiBranchFilter>());
  const RangeResult r = engine.Range(t1_, 3);
  ASSERT_EQ(r.matches.size(), 2u);
  EXPECT_EQ(r.matches[0], (std::pair<int, int>{0, 0}));  // itself
  EXPECT_EQ(r.matches[1], (std::pair<int, int>{1, 3}));  // T2 at distance 3
  // The decoy must be filtered, not refined.
  EXPECT_LE(r.stats.candidates, 2);

  const KnnResult knn = engine.Knn(t2_, 2);
  ASSERT_EQ(knn.neighbors.size(), 2u);
  EXPECT_EQ(knn.neighbors[0], (std::pair<int, int>{1, 0}));
  EXPECT_EQ(knn.neighbors[1], (std::pair<int, int>{0, 3}));
}

TEST_F(PaperExampleTest, HistogramFilterIsWeakerOnThisPair) {
  // The paper's motivation: histograms blur structure. Here the trees have
  // nearly identical label/degree/height statistics, so the histogram bound
  // is below the positional binary branch bound.
  HistogramFilter histo;
  const int histo_bound = histo.Bound(histo.ExtractFeatures(t1_),
                                      histo.ExtractFeatures(t2_));
  BranchDictionary branches(2);
  const int bb = OptimisticBound(BranchProfile::FromTree(t1_, branches),
                                 BranchProfile::FromTree(t2_, branches),
                                 MatchingMode::kExact);
  EXPECT_LE(histo_bound, bb);
  EXPECT_LE(histo_bound, TreeEditDistance(t1_, t2_));
}

}  // namespace
}  // namespace treesim
