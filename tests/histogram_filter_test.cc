#include "filters/histogram_filter.h"

#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"
#include "ted/zhang_shasha.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

TEST(SparseHistogramL1Test, BasicMergeCases) {
  using H = std::vector<std::pair<int, int>>;
  EXPECT_EQ(SparseHistogramL1(H{}, H{}), 0);
  EXPECT_EQ(SparseHistogramL1(H{{1, 3}}, H{}), 3);
  EXPECT_EQ(SparseHistogramL1(H{{1, 3}}, H{{1, 1}}), 2);
  EXPECT_EQ(SparseHistogramL1(H{{1, 3}, {5, 2}}, H{{2, 1}, {5, 2}}), 4);
  EXPECT_EQ(SparseHistogramL1(H{{1, 1}, {2, 1}}, H{{1, 1}, {2, 1}}), 0);
}

TEST(HistogramFilterTest, FeatureExtraction) {
  HistogramFilter filter;
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b{c d} e}", dict);
  const HistogramFilter::Features f = filter.ExtractFeatures(t);
  EXPECT_EQ(f.size, 5);
  EXPECT_EQ(f.height, 3);
  EXPECT_EQ(f.leaves, 3);
  // Degrees: a->2, b->2, c/d/e->0.
  EXPECT_EQ(f.degree_hist,
            (std::vector<std::pair<int, int>>{{0, 3}, {2, 2}}));
  // Labels: one of each of a..e (ids 1..5).
  EXPECT_EQ(f.label_hist.size(), 5u);
  for (const auto& [bucket, count] : f.label_hist) EXPECT_EQ(count, 1);
}

TEST(HistogramFilterTest, IdenticalTreesBoundZero) {
  HistogramFilter filter;
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b{c d} e}", dict);
  EXPECT_EQ(filter.Bound(filter.ExtractFeatures(t),
                         filter.ExtractFeatures(t)),
            0);
}

TEST(HistogramFilterTest, LabelBoundHalvesL1) {
  HistogramFilter::Options o;
  o.use_degree = false;
  o.use_scalars = false;
  HistogramFilter filter(o);
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b c}", dict);
  Tree b = MakeTree("a{x y}", dict);  // label L1 = 4
  EXPECT_EQ(filter.Bound(filter.ExtractFeatures(a),
                         filter.ExtractFeatures(b)),
            2);
}

TEST(HistogramFilterTest, DegreeBoundThirdsL1) {
  HistogramFilter::Options o;
  o.use_label = false;
  o.use_scalars = false;
  HistogramFilter filter(o);
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b c d}", dict);   // degrees {3,0,0,0}
  Tree b = MakeTree("a{b{c{d}}}", dict);  // degrees {1,1,1,0}
  // Histograms: {0:3, 3:1} vs {0:1, 1:3} -> L1 = 2 + 3 + 1 = 6 -> bound 2.
  EXPECT_EQ(filter.Bound(filter.ExtractFeatures(a),
                         filter.ExtractFeatures(b)),
            2);
}

TEST(HistogramFilterTest, ScalarBounds) {
  HistogramFilter::Options o;
  o.use_label = false;
  o.use_degree = false;
  HistogramFilter filter(o);
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b{c{d}}}", dict);  // height 4, size 4, leaves 1
  Tree b = MakeTree("a", dict);           // height 1, size 1, leaves 1
  EXPECT_EQ(filter.Bound(filter.ExtractFeatures(a),
                         filter.ExtractFeatures(b)),
            3);
}

TEST(HistogramFilterTest, FoldedLabelBucketsStillSound) {
  HistogramFilter::Options o;
  o.label_buckets = 3;
  o.degree_buckets = 4;
  HistogramFilter folded(o);
  HistogramFilter exact;
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 10);
  Rng rng(331);
  for (int trial = 0; trial < 40; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 25), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 25), pool, dict, rng);
    const int folded_bound = folded.Bound(folded.ExtractFeatures(a),
                                          folded.ExtractFeatures(b));
    const int exact_bound =
        exact.Bound(exact.ExtractFeatures(a), exact.ExtractFeatures(b));
    const int edist = TreeEditDistance(a, b);
    EXPECT_LE(folded_bound, edist);       // soundness survives folding
    EXPECT_LE(folded_bound, exact_bound);  // folding can only weaken
  }
}

TEST(HistogramFilterTest, FilterIndexInterface) {
  auto dict = std::make_shared<LabelDictionary>();
  std::vector<Tree> trees = {MakeTree("a{b c}", dict),
                             MakeTree("a{b{c}}", dict),
                             MakeTree("x{y}", dict)};
  HistogramFilter filter;
  filter.Build(trees);
  EXPECT_EQ(filter.name(), "Histo");
  auto ctx = filter.PrepareQuery(trees[0]);
  EXPECT_DOUBLE_EQ(filter.LowerBound(*ctx, 0), 0.0);
  EXPECT_GT(filter.LowerBound(*ctx, 2), 0.0);
  EXPECT_TRUE(filter.MayQualify(*ctx, 0, 0.0));
}

}  // namespace
}  // namespace treesim
