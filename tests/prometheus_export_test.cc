// Golden-format tests for MetricsSnapshot::ToPrometheus() (util/metrics.h):
// the exposition output must stay scrape-compatible (text format 0.0.4),
// so these tests pin the exact rendering — name sanitization, HELP/TYPE
// lines, label escaping, and the cumulative histogram encoding — against
// hand-built snapshots. MetricsSnapshot is plain data, so no registry state
// is involved and the goldens are deterministic.
#include "util/metrics.h"

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace treesim {
namespace {

MetricsSnapshot::HistogramValue MakeHistogram(std::vector<int64_t> bounds,
                                              std::vector<int64_t> buckets,
                                              int64_t sum) {
  MetricsSnapshot::HistogramValue h;
  h.bounds = std::move(bounds);
  h.bucket_counts = std::move(buckets);
  h.sum = sum;
  h.count = 0;
  for (const int64_t c : h.bucket_counts) h.count += c;
  return h;
}

TEST(PrometheusMetricNameTest, PrefixesAndSanitizes) {
  EXPECT_EQ(PrometheusMetricName("search.knn.queries"),
            "treesim_search_knn_queries");
  EXPECT_EQ(PrometheusMetricName("already_flat"), "treesim_already_flat");
  // Everything outside [a-zA-Z0-9_:] becomes '_'.
  EXPECT_EQ(PrometheusMetricName("weird-name with spaces"),
            "treesim_weird_name_with_spaces");
  EXPECT_EQ(PrometheusMetricName("q=2/depth"), "treesim_q_2_depth");
  // Colons survive (valid in the Prometheus alphabet).
  EXPECT_EQ(PrometheusMetricName("a:b"), "treesim_a:b");
}

TEST(PrometheusLabelEscapeTest, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(PrometheusLabelEscape("plain"), "plain");
  EXPECT_EQ(PrometheusLabelEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusLabelEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PrometheusLabelEscape("line1\nline2"), "line1\\nline2");
}

TEST(ToPrometheusTest, CounterGolden) {
  MetricsSnapshot snap;
  snap.counters["search.range.queries"] = 42;
  EXPECT_EQ(snap.ToPrometheus(),
            "# HELP treesim_search_range_queries_total treesim metric "
            "search.range.queries\n"
            "# TYPE treesim_search_range_queries_total counter\n"
            "treesim_search_range_queries_total 42\n");
}

TEST(ToPrometheusTest, GaugeGolden) {
  MetricsSnapshot snap;
  snap.gauges["pool.threads"] = 8;
  EXPECT_EQ(snap.ToPrometheus(),
            "# HELP treesim_pool_threads treesim metric pool.threads\n"
            "# TYPE treesim_pool_threads gauge\n"
            "treesim_pool_threads 8\n");
}

TEST(ToPrometheusTest, HistogramGoldenCumulativeBuckets) {
  MetricsSnapshot snap;
  // Per-bucket counts 3/4/5 + 2 overflow; exposition must be cumulative.
  snap.histograms["knn.gap"] = MakeHistogram({1, 2, 4}, {3, 4, 5, 2}, 29);
  EXPECT_EQ(snap.ToPrometheus(),
            "# HELP treesim_knn_gap treesim metric knn.gap\n"
            "# TYPE treesim_knn_gap histogram\n"
            "treesim_knn_gap_bucket{le=\"1\"} 3\n"
            "treesim_knn_gap_bucket{le=\"2\"} 7\n"
            "treesim_knn_gap_bucket{le=\"4\"} 12\n"
            "treesim_knn_gap_bucket{le=\"+Inf\"} 14\n"
            "treesim_knn_gap_sum 29\n"
            "treesim_knn_gap_count 14\n");
}

TEST(ToPrometheusTest, BucketSeriesIsMonotonicAndClosedByInf) {
  MetricsSnapshot snap;
  snap.histograms["h"] =
      MakeHistogram({1, 8, 64, 512}, {10, 0, 7, 0, 3}, 1234);
  const std::string out = snap.ToPrometheus();

  // Walk the rendered bucket lines: cumulative counts must be
  // non-decreasing and the +Inf bucket must equal the total count.
  int64_t previous = -1;
  int64_t inf_value = -1;
  int buckets_seen = 0;
  size_t pos = 0;
  const std::string needle = "treesim_h_bucket{le=\"";
  while ((pos = out.find(needle, pos)) != std::string::npos) {
    const size_t value_at = out.find("} ", pos);
    ASSERT_NE(value_at, std::string::npos);
    const int64_t value = std::stoll(out.substr(value_at + 2));
    EXPECT_GE(value, previous) << "cumulative bucket series decreased";
    previous = value;
    ++buckets_seen;
    if (out.compare(pos, needle.size() + 4, needle + "+Inf") == 0) {
      inf_value = value;
    }
    pos = value_at;
  }
  EXPECT_EQ(buckets_seen, 5);  // 4 finite bounds + +Inf
  EXPECT_EQ(inf_value, 20);
  const size_t count_at = out.find("treesim_h_count ");
  ASSERT_NE(count_at, std::string::npos);
  EXPECT_EQ(std::stoll(out.substr(count_at + 16)), 20);
}

TEST(ToPrometheusTest, MetricKindsRenderTogetherSorted) {
  MetricsSnapshot snap;
  snap.counters["b.counter"] = 1;
  snap.gauges["a.gauge"] = 2;
  snap.histograms["c.histo"] = MakeHistogram({10}, {1, 0}, 4);
  const std::string out = snap.ToPrometheus();
  // One TYPE line per metric, every family present.
  EXPECT_NE(out.find("# TYPE treesim_b_counter_total counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE treesim_a_gauge gauge\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE treesim_c_histo histogram\n"),
            std::string::npos);
  // Each HELP line precedes its TYPE line.
  EXPECT_LT(out.find("# HELP treesim_a_gauge "),
            out.find("# TYPE treesim_a_gauge "));
  EXPECT_LT(out.find("# HELP treesim_c_histo "),
            out.find("# TYPE treesim_c_histo "));
}

TEST(ToPrometheusTest, HelpLineEscapesMetricName) {
  MetricsSnapshot snap;
  snap.counters["odd\\name"] = 1;
  const std::string out = snap.ToPrometheus();
  // The dotted original lands in HELP with backslashes escaped.
  EXPECT_NE(out.find("# HELP treesim_odd_name_total treesim metric "
                     "odd\\\\name\n"),
            std::string::npos);
}

TEST(ToPrometheusTest, EmptySnapshotRendersEmpty) {
  const MetricsSnapshot snap;
  EXPECT_EQ(snap.ToPrometheus(), "");
}

TEST(ToPrometheusTest, LiveRegistrySnapshotParsesLineByLine) {
  // Shape check against the real registry (whatever other tests put in it
  // under ON; empty under OFF): every non-comment line is `name value`
  // with name in the exposition alphabet.
  const std::string out = MetricsRegistry::Global().Snapshot().ToPrometheus();
  size_t start = 0;
  while (start < out.size()) {
    size_t end = out.find('\n', start);
    if (end == std::string::npos) end = out.size();
    const std::string line = out.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    EXPECT_EQ(name.rfind("treesim_", 0), 0u) << line;
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':' ||
                      c == '{' || c == '}' || c == '"' || c == '=' ||
                      c == '+' || c == '.' || c == '\\';
      EXPECT_TRUE(ok) << "bad char '" << c << "' in: " << line;
    }
  }
}

}  // namespace
}  // namespace treesim
