// Cross-filter soundness: every FilterIndex implementation must produce
// lower bounds that never exceed the exact tree edit distance, on varied
// dataset shapes. This is the invariant that makes filter-and-refine exact.
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "datagen/synthetic_generator.h"
#include "filters/bibranch_filter.h"
#include "filters/filter_index.h"
#include "filters/histogram_filter.h"
#include "filters/sequence_filter.h"
#include "ted/zhang_shasha.h"
#include "test_util.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::RandomTree;

enum class FilterKind {
  kBiBranchPositionalQ2,
  kBiBranchPositionalQ3,
  kBiBranchPlainQ2,
  kBiBranchGreedyQ2,
  kHistogram,
  kHistogramFolded,
  kSequenceEditDistance,
  kSequenceQGram,
};

std::unique_ptr<FilterIndex> MakeFilter(FilterKind kind) {
  switch (kind) {
    case FilterKind::kBiBranchPositionalQ2: {
      BiBranchFilter::Options o;
      return std::make_unique<BiBranchFilter>(o);
    }
    case FilterKind::kBiBranchPositionalQ3: {
      BiBranchFilter::Options o;
      o.q = 3;
      return std::make_unique<BiBranchFilter>(o);
    }
    case FilterKind::kBiBranchPlainQ2: {
      BiBranchFilter::Options o;
      o.positional = false;
      return std::make_unique<BiBranchFilter>(o);
    }
    case FilterKind::kBiBranchGreedyQ2: {
      BiBranchFilter::Options o;
      o.matching = MatchingMode::kGreedy;
      return std::make_unique<BiBranchFilter>(o);
    }
    case FilterKind::kHistogram:
      return std::make_unique<HistogramFilter>();
    case FilterKind::kHistogramFolded: {
      HistogramFilter::Options o;
      o.label_buckets = 4;
      o.degree_buckets = 4;
      return std::make_unique<HistogramFilter>(o);
    }
    case FilterKind::kSequenceEditDistance: {
      SequenceFilter::Options o;
      o.mode = SequenceFilter::Options::Mode::kEditDistance;
      return std::make_unique<SequenceFilter>(o);
    }
    case FilterKind::kSequenceQGram:
      return std::make_unique<SequenceFilter>();
  }
  return nullptr;
}

std::string KindName(FilterKind kind) {
  switch (kind) {
    case FilterKind::kBiBranchPositionalQ2:
      return "BiBranchQ2";
    case FilterKind::kBiBranchPositionalQ3:
      return "BiBranchQ3";
    case FilterKind::kBiBranchPlainQ2:
      return "BiBranchPlain";
    case FilterKind::kBiBranchGreedyQ2:
      return "BiBranchGreedy";
    case FilterKind::kHistogram:
      return "Histo";
    case FilterKind::kHistogramFolded:
      return "HistoFolded";
    case FilterKind::kSequenceEditDistance:
      return "SeqED";
    case FilterKind::kSequenceQGram:
      return "SeqQGram";
  }
  return "?";
}

class FilterSoundnessTest : public ::testing::TestWithParam<FilterKind> {};

TEST_P(FilterSoundnessTest, LowerBoundNeverExceedsEDist_RandomTrees) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 4);
  Rng rng(401);
  std::vector<Tree> trees;
  for (int i = 0; i < 40; ++i) {
    trees.push_back(RandomTree(rng.UniformInt(1, 30), pool, dict, rng));
  }
  std::unique_ptr<FilterIndex> filter = MakeFilter(GetParam());
  filter->Build(trees);
  for (int qi = 0; qi < 8; ++qi) {
    const Tree& query = trees[static_cast<size_t>(qi * 5)];
    auto ctx = filter->PrepareQuery(query);
    for (int id = 0; id < static_cast<int>(trees.size()); ++id) {
      const double bound = filter->LowerBound(*ctx, id);
      const int edist =
          TreeEditDistance(query, trees[static_cast<size_t>(id)]);
      EXPECT_LE(bound, static_cast<double>(edist))
          << filter->name() << " query " << qi << " vs tree " << id;
      // MayQualify must accept everything within tau = edist.
      EXPECT_TRUE(filter->MayQualify(*ctx, id, edist));
    }
  }
}

TEST_P(FilterSoundnessTest, LowerBoundNeverExceedsEDist_ClusteredData) {
  // The paper's evolved synthetic data: clustered, near-duplicate heavy.
  auto dict = std::make_shared<LabelDictionary>();
  SyntheticParams params;
  params.size_mean = 20;
  params.size_stddev = 2;
  params.label_count = 6;
  params.seed_count = 3;
  SyntheticGenerator gen(params, dict, /*seed=*/77);
  const std::vector<Tree> trees = gen.GenerateDataset(30);
  std::unique_ptr<FilterIndex> filter = MakeFilter(GetParam());
  filter->Build(trees);
  for (int qi = 0; qi < 6; ++qi) {
    const Tree& query = trees[static_cast<size_t>(qi * 4)];
    auto ctx = filter->PrepareQuery(query);
    for (int id = 0; id < static_cast<int>(trees.size()); ++id) {
      const int edist =
          TreeEditDistance(query, trees[static_cast<size_t>(id)]);
      EXPECT_LE(filter->LowerBound(*ctx, id), static_cast<double>(edist));
    }
  }
}

TEST_P(FilterSoundnessTest, QueryOutsideDatabaseVocabulary) {
  // Queries may contain labels/branches the database has never seen.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(409);
  std::vector<Tree> trees;
  for (int i = 0; i < 10; ++i) {
    trees.push_back(RandomTree(rng.UniformInt(1, 15), pool, dict, rng));
  }
  std::unique_ptr<FilterIndex> filter = MakeFilter(GetParam());
  filter->Build(trees);
  const std::vector<LabelId> alien_pool = {dict->Intern("zz1"),
                                           dict->Intern("zz2")};
  Tree query = RandomTree(10, alien_pool, dict, rng);
  auto ctx = filter->PrepareQuery(query);
  for (int id = 0; id < static_cast<int>(trees.size()); ++id) {
    const int edist = TreeEditDistance(query, trees[static_cast<size_t>(id)]);
    EXPECT_LE(filter->LowerBound(*ctx, id), static_cast<double>(edist));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFilters, FilterSoundnessTest,
    ::testing::Values(FilterKind::kBiBranchPositionalQ2,
                      FilterKind::kBiBranchPositionalQ3,
                      FilterKind::kBiBranchPlainQ2,
                      FilterKind::kBiBranchGreedyQ2, FilterKind::kHistogram,
                      FilterKind::kHistogramFolded,
                      FilterKind::kSequenceEditDistance,
                      FilterKind::kSequenceQGram),
    [](const ::testing::TestParamInfo<FilterKind>& info) {
      return KindName(info.param);
    });

}  // namespace
}  // namespace treesim
