// Tests for the debug-mode invariant validators: valid structures pass,
// corrupted structures are caught with a diagnostic, and TREESIM_CHECK_OK
// turns a validator failure into a process abort (the DCHECK_OK behavior of
// debug builds). Corruption goes through InvariantTestPeer, a test-only
// friend of the core data structures.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/binary_branch.h"
#include "core/binary_tree.h"
#include "core/branch_profile.h"
#include "core/inverted_file.h"
#include "core/vptree.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "tree/tree.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"

namespace treesim {

/// Test-only backdoor into the private state of the validated structures so
/// tests can corrupt them and watch ValidateInvariants() trip.
struct InvariantTestPeer {
  static std::vector<Tree::Node>& Nodes(Tree& t) { return t.nodes_; }
  static std::vector<NormalizedBinaryTree::BNode>& Nodes(
      NormalizedBinaryTree& b) {
    return b.nodes_;
  }
  static int& OriginalCount(NormalizedBinaryTree& b) {
    return b.original_count_;
  }
  static std::vector<std::vector<InvertedFileIndex::Posting>>& Lists(
      InvertedFileIndex& index) {
    return index.lists_;
  }
  static std::vector<int>& TreeSizes(InvertedFileIndex& index) {
    return index.tree_sizes_;
  }
  static size_t NodeCount(const VpTree& v) { return v.nodes_.size(); }
  static bool IsLeaf(const VpTree& v, size_t i) { return v.nodes_[i].is_leaf; }
  static int64_t& Radius(VpTree& v, size_t i) { return v.nodes_[i].radius; }
};

namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

TEST(TreeInvariantsTest, ValidTreesPass) {
  EXPECT_TRUE(Tree().ValidateInvariants().ok());
  const Tree t = MakeTree("a{b{c d} e}");
  EXPECT_TRUE(t.ValidateInvariants().ok());
}

TEST(TreeInvariantsTest, BrokenParentLinkIsCaught) {
  Tree t = MakeTree("a{b{c d} e}");
  // Node 2 ("c") claims the root as parent while sitting in b's child list.
  InvariantTestPeer::Nodes(t)[2].parent = 0;
  const Status s = t.ValidateInvariants();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("parent link"), std::string::npos) << s;
}

TEST(TreeInvariantsTest, SiblingCycleIsCaught) {
  Tree t = MakeTree("a{b c d}");
  // d's next_sibling loops back to b: the child list of the root cycles.
  InvariantTestPeer::Nodes(t)[3].next_sibling = 1;
  EXPECT_FALSE(t.ValidateInvariants().ok());
}

TEST(TreeInvariantsTest, OutOfRangeLinkIsCaught) {
  Tree t = MakeTree("a{b}");
  InvariantTestPeer::Nodes(t)[1].first_child = 99;
  const Status s = t.ValidateInvariants();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("out of range"), std::string::npos) << s;
}

TEST(TreeInvariantsTest, UninternedLabelIsCaught) {
  Tree t = MakeTree("a{b}");
  InvariantTestPeer::Nodes(t)[1].label = 12345;
  EXPECT_FALSE(t.ValidateInvariants().ok());
}

TEST(TreeInvariantsDeathTest, CheckOkAbortsOnCorruptTree) {
  Tree t = MakeTree("a{b c}");
  InvariantTestPeer::Nodes(t)[2].next_sibling = 1;
  EXPECT_DEATH(TREESIM_CHECK_OK(t.ValidateInvariants()), "CHECK failed");
}

TEST(BinaryTreeInvariantsTest, ValidTransformPasses) {
  const Tree t = MakeTree("a{b{c d} e}");
  const NormalizedBinaryTree b = NormalizedBinaryTree::FromTree(t);
  EXPECT_TRUE(b.ValidateInvariants().ok());
  EXPECT_TRUE(b.ValidateInvariants(&t).ok());
}

TEST(BinaryTreeInvariantsTest, EpsilonWithLabelIsCaught) {
  const Tree t = MakeTree("a{b}");
  NormalizedBinaryTree b = NormalizedBinaryTree::FromTree(t);
  for (auto& node : InvariantTestPeer::Nodes(b)) {
    if (node.original == kInvalidNode) {
      node.label = 7;  // an ε pad must keep the ε label
      break;
    }
  }
  const Status s = b.ValidateInvariants();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("non-\xCE\xB5 label"), std::string::npos) << s;
}

TEST(BinaryTreeInvariantsTest, MissingPaddingIsCaught) {
  const Tree t = MakeTree("a{b}");
  NormalizedBinaryTree b = NormalizedBinaryTree::FromTree(t);
  // Cut the padded right child of the root: originals must have BOTH
  // children in the normalized form.
  InvariantTestPeer::Nodes(b)[0].right = NormalizedBinaryTree::kNoChild;
  EXPECT_FALSE(b.ValidateInvariants().ok());
}

TEST(BinaryTreeInvariantsTest, CountMismatchIsCaught) {
  const Tree t = MakeTree("a{b c}");
  NormalizedBinaryTree b = NormalizedBinaryTree::FromTree(t);
  InvariantTestPeer::OriginalCount(b) = 1;
  EXPECT_FALSE(b.ValidateInvariants().ok());
}

TEST(BinaryTreeInvariantsDeathTest, CheckOkAbortsOnCorruptTransform) {
  const Tree t = MakeTree("a{b}");
  NormalizedBinaryTree b = NormalizedBinaryTree::FromTree(t);
  InvariantTestPeer::Nodes(b)[0].left = 0;  // self-loop
  EXPECT_DEATH(TREESIM_CHECK_OK(b.ValidateInvariants()), "CHECK failed");
}

TEST(BranchProfileInvariantsTest, ValidProfilePasses) {
  BranchDictionary dict(2);
  const BranchProfile p =
      BranchProfile::FromTree(MakeTree("a{b{c d} e}"), dict);
  EXPECT_TRUE(p.ValidateInvariants().ok());
}

TEST(BranchProfileInvariantsTest, UnsortedEntriesAreCaught) {
  BranchDictionary dict(2);
  BranchProfile p = BranchProfile::FromTree(MakeTree("a{b{c d} e}"), dict);
  ASSERT_GE(p.entries.size(), 2u);
  std::swap(p.entries.front(), p.entries.back());
  const Status s = p.ValidateInvariants();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("ascending"), std::string::npos) << s;
}

TEST(BranchProfileInvariantsTest, DroppedOccurrenceIsCaught) {
  BranchDictionary dict(2);
  BranchProfile p = BranchProfile::FromTree(MakeTree("a{b{c d} e}"), dict);
  // Total occurrences must equal |T|; drop one silently.
  p.entries.back().occurrences.pop_back();
  p.entries.back().posts_sorted.pop_back();
  if (p.entries.back().occurrences.empty()) p.entries.pop_back();
  EXPECT_FALSE(p.ValidateInvariants().ok());
}

TEST(BranchProfileInvariantsTest, PostsSortedMismatchIsCaught) {
  BranchDictionary dict(2);
  BranchProfile p = BranchProfile::FromTree(MakeTree("a{b{c d} e}"), dict);
  for (BranchEntry& e : p.entries) {
    if (e.count() >= 1) {
      e.posts_sorted.back() += 1;
      // Keep the position legal so only the permutation check can fire.
      if (e.posts_sorted.back() > p.tree_size) e.posts_sorted.back() -= 2;
      break;
    }
  }
  EXPECT_FALSE(p.ValidateInvariants().ok());
}

TEST(BranchProfileInvariantsTest, WrongFactorIsCaught) {
  BranchDictionary dict(3);
  BranchProfile p = BranchProfile::FromTree(MakeTree("a{b}"), dict);
  p.factor = 5;  // q=3 requires 4(3-1)+1 = 9
  const Status s = p.ValidateInvariants();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("4(q-1)+1"), std::string::npos) << s;
}

TEST(InvertedFileInvariantsTest, ValidIndexPasses) {
  const auto labels = std::make_shared<LabelDictionary>();
  InvertedFileIndex index(2);
  index.Add(MakeTree("a{b{c d} e}", labels));
  index.Add(MakeTree("a{b c}", labels));
  index.Add(MakeTree("x{y{z}}", labels));
  EXPECT_TRUE(index.ValidateInvariants().ok());
}

TEST(InvertedFileInvariantsTest, UnsortedPostingsAreCaught) {
  const auto labels = std::make_shared<LabelDictionary>();
  InvertedFileIndex index(2);
  index.Add(MakeTree("a{b}", labels));
  index.Add(MakeTree("a{b}", labels));
  // Both trees share every branch, so some list has two postings to swap.
  bool swapped = false;
  for (auto& list : InvariantTestPeer::Lists(index)) {
    if (list.size() >= 2) {
      std::swap(list.front(), list.back());
      swapped = true;
      break;
    }
  }
  ASSERT_TRUE(swapped);
  const Status s = index.ValidateInvariants();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("ascending"), std::string::npos) << s;
}

TEST(InvertedFileInvariantsTest, PositionOutOfRangeIsCaught) {
  const auto labels = std::make_shared<LabelDictionary>();
  InvertedFileIndex index(2);
  index.Add(MakeTree("a{b c}", labels));
  InvariantTestPeer::Lists(index).front().front().positions.front().first =
      99;
  const Status s = index.ValidateInvariants();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("outside [1, |T|]"), std::string::npos) << s;
}

TEST(InvertedFileInvariantsTest, SizeTotalMismatchIsCaught) {
  const auto labels = std::make_shared<LabelDictionary>();
  InvertedFileIndex index(2);
  index.Add(MakeTree("a{b c}", labels));
  // Claim the tree is bigger than its occurrence total.
  InvariantTestPeer::TreeSizes(index).front() += 1;
  EXPECT_FALSE(index.ValidateInvariants().ok());
}

TEST(InvertedFileInvariantsDeathTest, CheckOkAbortsOnCorruptIndex) {
  const auto labels = std::make_shared<LabelDictionary>();
  InvertedFileIndex index(2);
  index.Add(MakeTree("a{b}", labels));
  InvariantTestPeer::TreeSizes(index).front() = 0;
  EXPECT_DEATH(TREESIM_CHECK_OK(index.ValidateInvariants()), "CHECK failed");
}

class VpTreeInvariantsTest : public ::testing::Test {
 protected:
  /// Indexes 40 random 12-node trees: enough profiles for internal nodes
  /// (leaf buckets hold 8) and enough label spread for nonzero distances.
  void BuildIndex() {
    const auto labels = std::make_shared<LabelDictionary>();
    const std::vector<LabelId> pool = MakeLabelPool(labels, 6);
    Rng rng(20260805);
    BranchDictionary dict(2);
    for (int i = 0; i < 40; ++i) {
      profiles_.push_back(
          BranchProfile::FromTree(RandomTree(12, pool, labels, rng), dict));
    }
    vptree_ = std::make_unique<VpTree>(&profiles_, rng);
  }

  std::vector<BranchProfile> profiles_;
  std::unique_ptr<VpTree> vptree_;
};

TEST_F(VpTreeInvariantsTest, ValidIndexPasses) {
  BuildIndex();
  EXPECT_TRUE(vptree_->ValidateInvariants().ok());
}

TEST_F(VpTreeInvariantsTest, BallContainmentViolationIsCaught) {
  BuildIndex();
  ASSERT_GT(vptree_->Depth(), 1) << "need an internal node to corrupt";
  // A negative radius makes every inside-subtree profile violate the ball:
  // BDist >= 0 > radius.
  bool corrupted = false;
  for (size_t i = 0; i < InvariantTestPeer::NodeCount(*vptree_); ++i) {
    if (!InvariantTestPeer::IsLeaf(*vptree_, i)) {
      InvariantTestPeer::Radius(*vptree_, i) = -1;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  const Status s = vptree_->ValidateInvariants();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("ball"), std::string::npos) << s;
}

TEST_F(VpTreeInvariantsTest, DeathOnCorruptBall) {
  BuildIndex();
  ASSERT_GT(vptree_->Depth(), 1);
  for (size_t i = 0; i < InvariantTestPeer::NodeCount(*vptree_); ++i) {
    if (!InvariantTestPeer::IsLeaf(*vptree_, i)) {
      InvariantTestPeer::Radius(*vptree_, i) = -1;
      break;
    }
  }
  EXPECT_DEATH(TREESIM_CHECK_OK(vptree_->ValidateInvariants()),
               "CHECK failed");
}

TEST(CheckMacrosTest, CheckOpPrintsBothOperandValues) {
  const int lhs = 4;
  const int rhs = 5;
  EXPECT_DEATH(TREESIM_CHECK_EQ(lhs, rhs), "lhs == rhs \\(4 vs\\. 5\\)");
  EXPECT_DEATH(TREESIM_CHECK_GT(lhs, rhs) << "extra context",
               "lhs > rhs \\(4 vs\\. 5\\) extra context");
}

TEST(CheckMacrosTest, CheckOpEvaluatesOperandsOnce) {
  int evaluations = 0;
  const auto bump = [&evaluations] { return ++evaluations; };
  TREESIM_CHECK_EQ(bump(), 1);
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckMacrosTest, CheckOkPassesAndAborts) {
  TREESIM_CHECK_OK(Status::Ok());  // no-op on OK
  EXPECT_DEATH(TREESIM_CHECK_OK(Status::Internal("boom")), "boom");
}

TEST(CheckMacrosTest, DcheckFamilyMatchesBuildType) {
#ifdef NDEBUG
  // Release: compiled out, operands not evaluated.
  int evaluations = 0;
  const auto bump = [&evaluations] { return ++evaluations; };
  TREESIM_DCHECK_EQ(bump(), 12345);
  TREESIM_DCHECK_OK(Status::Internal("never evaluated"));
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_DEATH(TREESIM_DCHECK_EQ(1, 2), "1 == 2 \\(1 vs\\. 2\\)");
  EXPECT_DEATH(TREESIM_DCHECK_OK(Status::Internal("boom")), "boom");
#endif
}

}  // namespace
}  // namespace treesim
