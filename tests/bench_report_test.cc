// Schema-validation tests for the canonical bench report
// (bench/bench_report.h): the JSON every bench binary writes for --json=FILE
// must parse with the independent parser in tests/json_validator.h and
// carry the documented top-level keys, because tools/run_benchmarks.py and
// tools/bench_compare.py consume it structurally. The test executable
// compiles bench_report.cc directly (tests/CMakeLists.txt), so this is the
// same code the bench binaries link.
#include "bench_report.h"

#include <cstdio>
#include <string>

#include "gtest/gtest.h"
#include "json_validator.h"
#include "search/query_stats.h"

namespace treesim {
namespace bench {
namespace {

using test::JsonValue;
using test::ParseJson;

TEST(JsonObjectTest, RendersTypedFieldsInCallOrder) {
  JsonObject obj;
  obj.Str("name", "x").Int("n", 3).Double("d", 0.25).Bool("ok", true);
  EXPECT_EQ(obj.Render(), "{\"name\":\"x\",\"n\":3,\"d\":0.25,\"ok\":true}");
}

TEST(JsonObjectTest, RawEmbedsPrerenderedJson) {
  JsonObject obj;
  obj.Raw("nested", "{\"a\":1}").Raw("list", "[1,2]");
  JsonValue doc;
  ASSERT_TRUE(ParseJson(obj.Render(), &doc));
  ASSERT_TRUE(doc.Find("nested")->is_object());
  EXPECT_EQ(doc.Find("nested")->Find("a")->number_value, 1);
  ASSERT_TRUE(doc.Find("list")->is_array());
  EXPECT_EQ(doc.Find("list")->array.size(), 2u);
}

TEST(JsonObjectTest, EscapesStringsAndNonFiniteDoubles) {
  JsonObject obj;
  obj.Str("s", "quote \" backslash \\ newline \n").Double("bad", 1.0 / 0.0);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(obj.Render(), &doc));
  EXPECT_EQ(doc.Find("s")->string_value, "quote \" backslash \\ newline \n");
  EXPECT_EQ(doc.Find("bad")->kind, JsonValue::Kind::kNull);
}

TEST(QueryStatsJsonTest, AllCountersPresentAndNonNegative) {
  QueryStats stats;
  stats.database_size = 100;
  stats.candidates = 40;
  stats.edit_distance_calls = 38;
  stats.results = 7;
  stats.filter_seconds = 0.25;
  stats.refine_seconds = 0.5;
  JsonValue doc;
  ASSERT_TRUE(ParseJson(QueryStatsJson(stats), &doc));
  for (const char* key :
       {"database_size", "candidates", "edit_distance_calls", "results",
        "filter_seconds", "refine_seconds", "accessed_fraction"}) {
    ASSERT_TRUE(doc.Has(key)) << key;
    EXPECT_GE(doc.Find(key)->number_value, 0) << key;
  }
  EXPECT_EQ(doc.Find("candidates")->number_value, 40);
  EXPECT_EQ(doc.Find("edit_distance_calls")->number_value, 38);
}

TEST(BenchReportTest, CanonicalSchemaRoundTrips) {
  BenchReport report("schema_test");
  report.config().Int("trees", 100).Int("queries", 4).Str("mode", "range");
  report.AddPoint().Str("label", "fanout").Double("x", 2).Double(
      "sequential_cpu_seconds", 1.5);
  report.AddPoint().Str("label", "fanout").Double("x", 4).Double(
      "sequential_cpu_seconds", 0.75);

  JsonValue doc;
  ASSERT_TRUE(ParseJson(report.Render(), &doc));
  ASSERT_TRUE(doc.is_object());

  // The canonical top level: schema_version / benchmark / build / config /
  // points, in that order (consumers may stream).
  ASSERT_EQ(doc.object.size(), 5u);
  EXPECT_EQ(doc.object[0].first, "schema_version");
  EXPECT_EQ(doc.object[0].second.number_value, 1);
  EXPECT_EQ(doc.object[1].first, "benchmark");
  EXPECT_EQ(doc.object[1].second.string_value, "schema_test");
  EXPECT_EQ(doc.object[2].first, "build");
  EXPECT_EQ(doc.object[3].first, "config");
  EXPECT_EQ(doc.object[4].first, "points");

  // Build provenance carries the compile-time facts.
  const JsonValue* build = doc.Find("build");
  ASSERT_TRUE(build->is_object());
  for (const char* key :
       {"git_sha", "git_dirty", "build_type", "compiler", "metrics_enabled"}) {
    EXPECT_TRUE(build->Has(key)) << key;
  }
  EXPECT_TRUE(build->Find("git_sha")->is_string());
  EXPECT_TRUE(build->Find("metrics_enabled")->is_bool());

  const JsonValue* config = doc.Find("config");
  EXPECT_EQ(config->Find("trees")->number_value, 100);
  EXPECT_EQ(config->Find("mode")->string_value, "range");

  const JsonValue* points = doc.Find("points");
  ASSERT_TRUE(points->is_array());
  ASSERT_EQ(points->array.size(), 2u);
  EXPECT_EQ(points->array[0].Find("label")->string_value, "fanout");
  EXPECT_EQ(points->array[1].Find("x")->number_value, 4);
}

TEST(BenchReportTest, EmptyReportStillValid) {
  BenchReport report("empty");
  JsonValue doc;
  ASSERT_TRUE(ParseJson(report.Render(), &doc));
  EXPECT_TRUE(doc.Find("points")->is_array());
  EXPECT_TRUE(doc.Find("points")->array.empty());
  EXPECT_TRUE(doc.Find("config")->is_object());
}

TEST(BenchReportTest, WriteFileAndWriteIfRequested) {
  BenchReport report("file_test");
  report.AddPoint().Str("label", "p").Int("n", 1);

  // Empty path: nothing to do, success.
  EXPECT_TRUE(report.WriteIfRequested(""));

  const std::string path = ::testing::TempDir() + "/bench_report_test.json";
  ASSERT_TRUE(report.WriteFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  int c;
  while ((c = std::fgetc(f)) != EOF) content.push_back(static_cast<char>(c));
  std::fclose(f);
  std::remove(path.c_str());

  JsonValue doc;
  ASSERT_TRUE(ParseJson(content, &doc));
  EXPECT_EQ(doc.Find("benchmark")->string_value, "file_test");

  // Unwritable path: Status error / false, not a crash.
  EXPECT_FALSE(report.WriteFile("/no/such/dir/report.json").ok());
  EXPECT_FALSE(report.WriteIfRequested("/no/such/dir/report.json"));
}

}  // namespace
}  // namespace bench
}  // namespace treesim
