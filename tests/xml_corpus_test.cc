#include "xml/xml_corpus.h"

#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"
#include "tree/bracket.h"

namespace treesim {
namespace {

using testing::MakeTree;

constexpr char kMiniDblp[] = R"(<?xml version="1.0"?>
<!DOCTYPE dblp SYSTEM "dblp.dtd">
<dblp>
  <article key="a1">
    <author>Alice</author><title>Trees</title><year>2004</year>
  </article>
  <inproceedings key="p1">
    <author>Bob</author><author>Carol</author><title>Graphs</title>
  </inproceedings>
  <www><author>Dan</author><url/></www>
</dblp>)";

TEST(XmlCorpusTest, SplitsDblpStyleDocument) {
  auto dict = std::make_shared<LabelDictionary>();
  StatusOr<std::vector<Tree>> records = ParseXmlCorpus(kMiniDblp, dict);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ(ToBracket((*records)[0]),
            "article{author{Alice} title{Trees} year{2004}}");
  EXPECT_EQ(ToBracket((*records)[1]),
            "inproceedings{author{Bob} author{Carol} title{Graphs}}");
  EXPECT_EQ(ToBracket((*records)[2]), "www{author{Dan} url}");
  // All records share the corpus dictionary.
  EXPECT_EQ((*records)[0].label_dict().get(), dict.get());
}

TEST(XmlCorpusTest, StructureOnlyMode) {
  auto dict = std::make_shared<LabelDictionary>();
  XmlParseOptions options;
  options.text_mode = XmlParseOptions::TextMode::kIgnore;
  StatusOr<std::vector<Tree>> records =
      ParseXmlCorpus(kMiniDblp, dict, options);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(ToBracket((*records)[0]), "article{author title year}");
}

TEST(XmlCorpusTest, EmptyRootGivesEmptyForest) {
  auto dict = std::make_shared<LabelDictionary>();
  StatusOr<std::vector<Tree>> records = ParseXmlCorpus("<dblp/>", dict);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(XmlCorpusTest, MalformedCorpusFails) {
  auto dict = std::make_shared<LabelDictionary>();
  EXPECT_FALSE(ParseXmlCorpus("<dblp><article></dblp>", dict).ok());
}

TEST(XmlCorpusTest, SplitChildrenOfBracketTree) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree corpus = MakeTree("root{a{b c} d e{f}}", dict);
  const std::vector<Tree> records = SplitChildren(corpus);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(ToBracket(records[0]), "a{b c}");
  EXPECT_EQ(ToBracket(records[1]), "d");
  EXPECT_EQ(ToBracket(records[2]), "e{f}");
}

TEST(XmlCorpusTest, SplitEmptyTree) {
  Tree empty;
  EXPECT_TRUE(SplitChildren(empty).empty());
}

TEST(XmlCorpusTest, MissingFileFails) {
  auto dict = std::make_shared<LabelDictionary>();
  EXPECT_FALSE(LoadXmlCorpus("/no/such/file.xml", dict).ok());
}

}  // namespace
}  // namespace treesim
