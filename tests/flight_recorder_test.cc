// Unit tests for the flight recorder (util/flight_recorder.h): ordering,
// ring wraparound, the frozen-capacity contract, the signal-safe
// CrashSnapshot path, and a concurrent writer/snapshot stress that TSan
// uses to prove the seqlock protocol race-free. The recorder is
// process-global; every test starts from ResetForTest().
#include "util/flight_recorder.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/metrics.h"

namespace treesim {
namespace {

FlightRecord MakeRecord(int64_t id) {
  // Derived fields: any record a reader ever observes must satisfy
  // param == 2*id and total_micros == 3*id, or the slot was torn.
  FlightRecord rec;
  rec.query_id = id;
  rec.op = "test";
  rec.param = 2 * id;
  rec.total_micros = 3 * id;
  rec.results = id;
  return rec;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { FlightRecorder::Global().ResetForTest(); }
  void TearDown() override { FlightRecorder::Global().ResetForTest(); }
};

TEST_F(FlightRecorderTest, EmptySnapshot) {
  EXPECT_TRUE(FlightRecorder::Global().Snapshot().empty());
  EXPECT_EQ(FlightRecorder::Global().total_recorded(), 0);
  FlightRecord scratch[4];
  EXPECT_EQ(FlightRecorder::Global().CrashSnapshot(scratch, 4), 0);
}

TEST_F(FlightRecorderTest, SnapshotIsOldestFirst) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  FlightRecorder& recorder = FlightRecorder::Global();
  for (int64_t i = 1; i <= 5; ++i) recorder.Record(MakeRecord(i));
  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 5u);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(records[static_cast<size_t>(i)].query_id, i + 1);
    EXPECT_STREQ(records[static_cast<size_t>(i)].op, "test");
  }
  EXPECT_EQ(recorder.total_recorded(), 5);
}

TEST_F(FlightRecorderTest, WraparoundKeepsTheNewest) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Configure(4);
  for (int64_t i = 1; i <= 10; ++i) recorder.Record(MakeRecord(i));
  EXPECT_EQ(recorder.capacity(), 4);
  EXPECT_EQ(recorder.total_recorded(), 10);
  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[static_cast<size_t>(i)].query_id, 7 + i);
  }
}

TEST_F(FlightRecorderTest, CapacityClampsAndFreezes) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Configure(0);
  EXPECT_EQ(recorder.capacity(), 1);
  recorder.Configure(1 << 20);
  EXPECT_EQ(recorder.capacity(), 4096);
  recorder.Configure(8);
  recorder.Record(MakeRecord(1));
  recorder.Configure(8);  // same value after freezing: fine
  EXPECT_DEATH(recorder.Configure(16), "frozen");
}

TEST_F(FlightRecorderTest, CrashSnapshotIsNewestFirstAndBounded) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  FlightRecorder& recorder = FlightRecorder::Global();
  for (int64_t i = 1; i <= 6; ++i) recorder.Record(MakeRecord(i));
  FlightRecord scratch[4];
  const int n = recorder.CrashSnapshot(scratch, 4);
  ASSERT_EQ(n, 4);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(scratch[i].query_id, 6 - i);
  }
}

TEST_F(FlightRecorderTest, ConcurrentWritersAndSnapshotsStaySane) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Configure(16);  // small ring: maximal writer/reader contention
  constexpr int kWriters = 4;
  constexpr int64_t kPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> torn{0};

  std::thread reader([&recorder, &stop, &torn] {
    FlightRecord scratch[16];
    while (!stop.load(std::memory_order_acquire)) {
      for (const FlightRecord& rec : recorder.Snapshot()) {
        if (rec.param != 2 * rec.query_id ||
            rec.total_micros != 3 * rec.query_id) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
      const int n = recorder.CrashSnapshot(scratch, 16);
      for (int i = 0; i < n; ++i) {
        if (scratch[i].param != 2 * scratch[i].query_id) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (int64_t i = 0; i < kPerWriter; ++i) {
        recorder.Record(MakeRecord(w * kPerWriter + i + 1));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0) << "snapshot returned a torn record";
  EXPECT_EQ(recorder.total_recorded(), kWriters * kPerWriter);
  // After the writers quiesce, the ring holds exactly its capacity in
  // consistent records.
  EXPECT_EQ(recorder.Snapshot().size(), 16u);
}

TEST_F(FlightRecorderTest, ResetRestoresDefaults) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Configure(2);
  recorder.Record(MakeRecord(1));
  recorder.ResetForTest();
  EXPECT_EQ(recorder.capacity(), 128);
  EXPECT_EQ(recorder.total_recorded(), 0);
  EXPECT_TRUE(recorder.Snapshot().empty());
}

}  // namespace
}  // namespace treesim
