#include "filters/sequence_filter.h"

#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"
#include "ted/zhang_shasha.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

TEST(SequenceFilterTest, Names) {
  EXPECT_EQ(SequenceFilter().name(), "SeqQGram(2)");
  SequenceFilter::Options ed;
  ed.mode = SequenceFilter::Options::Mode::kEditDistance;
  EXPECT_EQ(SequenceFilter(ed).name(), "SeqED");
  SequenceFilter::Options q3;
  q3.q = 3;
  EXPECT_EQ(SequenceFilter(q3).name(), "SeqQGram(3)");
}

TEST(SequenceFilterTest, ExactModeMatchesGuhaBound) {
  // T1/T2 of the paper: preorder sequences abcdbcde / abcdbecde -> SED 1?
  // Verified against the exact TED instead of a hand value: the bound must
  // be sound and positive for this pair.
  auto dict = std::make_shared<LabelDictionary>();
  std::vector<Tree> trees = {MakeTree("a{b{c d} b{c d} e}", dict),
                             MakeTree("a{b{c d b{e}} c d e}", dict)};
  SequenceFilter::Options opts;
  opts.mode = SequenceFilter::Options::Mode::kEditDistance;
  SequenceFilter filter(opts);
  filter.Build(trees);
  auto ctx = filter.PrepareQuery(trees[0]);
  const double bound = filter.LowerBound(*ctx, 1);
  EXPECT_GT(bound, 0.0);
  EXPECT_LE(bound, TreeEditDistance(trees[0], trees[1]));
  EXPECT_DOUBLE_EQ(filter.LowerBound(*ctx, 0), 0.0);
}

TEST(SequenceFilterTest, BothModesSoundOnRandomTrees) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 4);
  Rng rng(733);
  std::vector<Tree> trees;
  for (int i = 0; i < 30; ++i) {
    trees.push_back(RandomTree(rng.UniformInt(1, 25), pool, dict, rng));
  }
  for (const auto mode : {SequenceFilter::Options::Mode::kEditDistance,
                          SequenceFilter::Options::Mode::kQGram}) {
    SequenceFilter::Options opts;
    opts.mode = mode;
    SequenceFilter filter(opts);
    filter.Build(trees);
    for (int qi = 0; qi < 6; ++qi) {
      const Tree& query = trees[static_cast<size_t>(qi * 5)];
      auto ctx = filter.PrepareQuery(query);
      for (int id = 0; id < static_cast<int>(trees.size()); ++id) {
        const int edist =
            TreeEditDistance(query, trees[static_cast<size_t>(id)]);
        EXPECT_LE(filter.LowerBound(*ctx, id), static_cast<double>(edist));
        EXPECT_TRUE(filter.MayQualify(*ctx, id, edist));
      }
    }
  }
}

TEST(SequenceFilterTest, ExactModeDominatesQGramMode) {
  // SED of a sequence is always >= its q-gram count bound.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(739);
  std::vector<Tree> trees;
  for (int i = 0; i < 20; ++i) {
    trees.push_back(RandomTree(rng.UniformInt(1, 20), pool, dict, rng));
  }
  SequenceFilter::Options ed_opts;
  ed_opts.mode = SequenceFilter::Options::Mode::kEditDistance;
  SequenceFilter exact(ed_opts);
  SequenceFilter grams;  // default q-gram mode, q=2
  exact.Build(trees);
  grams.Build(trees);
  for (int qi = 0; qi < 5; ++qi) {
    const Tree& query = trees[static_cast<size_t>(qi * 4)];
    auto ectx = exact.PrepareQuery(query);
    auto gctx = grams.PrepareQuery(query);
    for (int id = 0; id < static_cast<int>(trees.size()); ++id) {
      EXPECT_GE(exact.LowerBound(*ectx, id), grams.LowerBound(*gctx, id));
    }
  }
}

TEST(SequenceFilterTest, MayQualifyAgreesWithLowerBoundInExactMode) {
  // The banded threshold test must make the same decision as the full SED.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(743);
  std::vector<Tree> trees;
  for (int i = 0; i < 20; ++i) {
    trees.push_back(RandomTree(rng.UniformInt(1, 20), pool, dict, rng));
  }
  SequenceFilter::Options opts;
  opts.mode = SequenceFilter::Options::Mode::kEditDistance;
  SequenceFilter filter(opts);
  filter.Build(trees);
  const Tree& query = trees[3];
  auto ctx = filter.PrepareQuery(query);
  for (int id = 0; id < static_cast<int>(trees.size()); ++id) {
    const double bound = filter.LowerBound(*ctx, id);
    for (int tau = 0; tau <= 15; ++tau) {
      EXPECT_EQ(filter.MayQualify(*ctx, id, tau), bound <= tau)
          << "id=" << id << " tau=" << tau << " bound=" << bound;
    }
  }
}

}  // namespace
}  // namespace treesim
