// Unit tests for the metrics registry (util/metrics.h): registration
// semantics, bucket boundary placement, snapshot/diff arithmetic, rendering,
// and exactness of concurrent counting. The registry is process-global, so
// every test uses names under a test-local prefix and treats pre-existing
// metrics (registered by the library) as background it must not assume
// absent.
#include "util/metrics.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/safe_math.h"
#include "util/thread_pool.h"

namespace treesim {
namespace {

TEST(MetricsTest, CounterIncrementsAndAdds) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  Counter& c = MetricsRegistry::Global().GetCounter("test.metrics.counter");
  const int64_t before = c.value();
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), before + 42);
}

TEST(MetricsTest, GaugeIsLastWriteWins) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  Gauge& g = MetricsRegistry::Global().GetGauge("test.metrics.gauge");
  g.Set(7);
  g.Set(3);
  EXPECT_EQ(g.value(), 3);
  g.Add(-3);
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsTest, RegistrationReturnsSameInstance) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  Counter& a = MetricsRegistry::Global().GetCounter("test.metrics.same");
  Counter& b = MetricsRegistry::Global().GetCounter("test.metrics.same");
  EXPECT_EQ(&a, &b);
  Histogram& h1 =
      MetricsRegistry::Global().GetHistogram("test.metrics.same_h", {1, 2});
  Histogram& h2 =
      MetricsRegistry::Global().GetHistogram("test.metrics.same_h", {1, 2});
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsDeathTest, KindMismatchIsFatal) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  MetricsRegistry::Global().GetCounter("test.metrics.kind_clash");
  EXPECT_DEATH(
      MetricsRegistry::Global().GetGauge("test.metrics.kind_clash"), "");
  EXPECT_DEATH(MetricsRegistry::Global().GetHistogram(
                   "test.metrics.kind_clash", {1}),
               "");
}

TEST(MetricsDeathTest, HistogramReboundIsFatal) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  MetricsRegistry::Global().GetHistogram("test.metrics.rebound", {1, 2, 4});
  EXPECT_DEATH(MetricsRegistry::Global().GetHistogram("test.metrics.rebound",
                                                      {1, 2, 8}),
               "");
}

TEST(MetricsDeathTest, HistogramBoundsMustAscendStrictly) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  EXPECT_DEATH(MetricsRegistry::Global().GetHistogram(
                   "test.metrics.bad_bounds_empty", {}),
               "");
  EXPECT_DEATH(MetricsRegistry::Global().GetHistogram(
                   "test.metrics.bad_bounds_dup", {1, 1, 2}),
               "");
  EXPECT_DEATH(MetricsRegistry::Global().GetHistogram(
                   "test.metrics.bad_bounds_desc", {4, 2}),
               "");
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  // Bucket i counts samples <= bounds[i]; the last bucket is overflow.
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("test.metrics.buckets", {1, 2, 4});
  ASSERT_EQ(h.bucket_count(), 4);
  for (int64_t sample = 0; sample <= 5; ++sample) h.Record(sample);
  EXPECT_EQ(h.bucket_value(0), 2);  // 0, 1
  EXPECT_EQ(h.bucket_value(1), 1);  // 2
  EXPECT_EQ(h.bucket_value(2), 2);  // 3, 4
  EXPECT_EQ(h.bucket_value(3), 1);  // 5 (overflow)
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.sum(), 0 + 1 + 2 + 3 + 4 + 5);
}

TEST(MetricsTest, CanonicalBucketSetsAscendStrictly) {
  for (const std::vector<int64_t>& bounds :
       {LatencyBucketsMicros(), CountBuckets(), SmallValueBuckets()}) {
    ASSERT_FALSE(bounds.empty());
    for (size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

TEST(MetricsTest, SnapshotAndDiffSince) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  Counter& c = MetricsRegistry::Global().GetCounter("test.metrics.diff_c");
  Gauge& g = MetricsRegistry::Global().GetGauge("test.metrics.diff_g");
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("test.metrics.diff_h", {10});
  c.Increment(5);
  g.Set(100);
  h.Record(3);
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  c.Increment(7);
  g.Set(42);
  h.Record(30);
  const MetricsSnapshot diff =
      MetricsRegistry::Global().Snapshot().DiffSince(before);
  // Counters and histogram contents subtract; gauges keep the newer level.
  EXPECT_EQ(diff.counter("test.metrics.diff_c"), 7);
  EXPECT_EQ(diff.gauge("test.metrics.diff_g"), 42);
  const MetricsSnapshot::HistogramValue* hv =
      diff.histogram("test.metrics.diff_h");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->count, 1);
  EXPECT_EQ(hv->sum, 30);
  ASSERT_EQ(hv->bucket_counts.size(), 2u);
  EXPECT_EQ(hv->bucket_counts[0], 0);  // the <=10 sample predates `before`
  EXPECT_EQ(hv->bucket_counts[1], 1);
  EXPECT_DOUBLE_EQ(hv->Mean(), 30.0);
}

TEST(MetricsTest, SnapshotMissingNamesAreZeroOrNull) {
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("test.metrics.never_registered"), 0);
  EXPECT_EQ(snap.gauge("test.metrics.never_registered"), 0);
  EXPECT_EQ(snap.histogram("test.metrics.never_registered"), nullptr);
}

TEST(MetricsTest, SnapshotFoldsSafeMathSaturations) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("safe_math.saturations"),
            static_cast<int64_t>(SafeMathStats::saturations()));
}

TEST(MetricsTest, ConcurrentCountingIsExact) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Counter& c = MetricsRegistry::Global().GetCounter("test.metrics.mt_c");
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("test.metrics.mt_h", {8, 64});
  const int64_t c_before = c.value();
  const int64_t h_before = h.count();
  {
    ThreadPool pool(kThreads);
    pool.ParallelFor(kThreads, [&c, &h](int64_t) {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        h.Record(i % 100);
      }
    });
  }
  EXPECT_EQ(c.value() - c_before, int64_t{kThreads} * kPerThread);
  EXPECT_EQ(h.count() - h_before, int64_t{kThreads} * kPerThread);
}

TEST(MetricsTest, ToTextAndToJsonRenderRegisteredNames) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  MetricsRegistry::Global().GetCounter("test.metrics.render_c").Increment(3);
  MetricsRegistry::Global().GetGauge("test.metrics.render_g").Set(-4);
  MetricsRegistry::Global()
      .GetHistogram("test.metrics.render_h", {5})
      .Record(2);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const std::string text = snap.ToText();
  EXPECT_NE(text.find("test.metrics.render_c"), std::string::npos);
  EXPECT_NE(text.find("test.metrics.render_g"), std::string::npos);
  EXPECT_NE(text.find("test.metrics.render_h"), std::string::npos);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.metrics.render_g\":-4"), std::string::npos);
  // Braces and brackets balance (cheap well-formedness check; the e2e test
  // cross-validates values against the snapshot accessors).
  int braces = 0;
  int brackets = 0;
  for (char ch : json) {
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(MetricsTest, ResetForTestZeroesWithoutUnregistering) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  Counter& c = MetricsRegistry::Global().GetCounter("test.metrics.reset_c");
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("test.metrics.reset_h", {1});
  c.Increment(9);
  h.Record(1);
  const int count_before = MetricsRegistry::Global().metric_count();
  MetricsRegistry::Global().ResetForTest();
  EXPECT_EQ(MetricsRegistry::Global().metric_count(), count_before);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.bucket_value(0), 0);
  // The cached references stay live: writing after the reset works.
  c.Increment();
  EXPECT_EQ(c.value(), 1);
}

TEST(MetricsTest, MacrosRecordThroughCachedStatics) {
  TREESIM_COUNTER_INC("test.metrics.macro_c");
  TREESIM_COUNTER_ADD("test.metrics.macro_c", 4);
  TREESIM_GAUGE_SET("test.metrics.macro_g", 11);
  TREESIM_HISTOGRAM_RECORD("test.metrics.macro_h", SmallValueBuckets(), 6);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  if (kMetricsEnabled) {
    EXPECT_GE(snap.counter("test.metrics.macro_c"), 5);
    EXPECT_EQ(snap.gauge("test.metrics.macro_g"), 11);
    const MetricsSnapshot::HistogramValue* hv =
        snap.histogram("test.metrics.macro_h");
    ASSERT_NE(hv, nullptr);
    EXPECT_GE(hv->count, 1);
  } else {
    // Compile-out contract: the macros above must leave no trace at all.
    EXPECT_EQ(MetricsRegistry::Global().metric_count(), 0);
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.gauges.empty());
    EXPECT_TRUE(snap.histograms.empty());
  }
}

TEST(MetricsTest, OffBuildStubsAreInert) {
  if (kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=ON";
  Counter& c = MetricsRegistry::Global().GetCounter("test.metrics.off_c");
  c.Increment(100);
  EXPECT_EQ(c.value(), 0);
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("test.metrics.off_h", {1});
  h.Record(5);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(MetricsRegistry::Global().metric_count(), 0);
}

}  // namespace
}  // namespace treesim
