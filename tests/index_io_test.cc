#include "core/index_io.h"

#include <cstdio>
#include <memory>

#include "gtest/gtest.h"
#include "core/positional.h"
#include "datagen/dblp_generator.h"
#include "test_util.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

struct BuiltIndex {
  std::shared_ptr<LabelDictionary> labels;
  std::unique_ptr<BranchDictionary> branches;
  std::vector<BranchProfile> profiles;
  std::vector<Tree> trees;
};

BuiltIndex BuildSample(int count, int q, uint64_t seed) {
  BuiltIndex b;
  b.labels = std::make_shared<LabelDictionary>();
  DblpGenerator gen(DblpParams{}, b.labels, seed);
  b.trees = gen.Generate(count);
  b.branches = std::make_unique<BranchDictionary>(q);
  for (const Tree& t : b.trees) {
    b.profiles.push_back(BranchProfile::FromTree(t, *b.branches));
  }
  return b;
}

void ExpectProfilesEqual(const std::vector<BranchProfile>& a,
                         const std::vector<BranchProfile>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tree_size, b[i].tree_size);
    EXPECT_EQ(a[i].q, b[i].q);
    EXPECT_EQ(a[i].factor, b[i].factor);
    ASSERT_EQ(a[i].entries.size(), b[i].entries.size()) << "tree " << i;
    for (size_t e = 0; e < a[i].entries.size(); ++e) {
      EXPECT_EQ(a[i].entries[e].branch, b[i].entries[e].branch);
      EXPECT_EQ(a[i].entries[e].occurrences, b[i].entries[e].occurrences);
      EXPECT_EQ(a[i].entries[e].posts_sorted, b[i].entries[e].posts_sorted);
    }
  }
}

TEST(IndexIoTest, StringRoundTripPreservesEverything) {
  const BuiltIndex built = BuildSample(40, 2, 11);
  const std::string text =
      BranchIndexToString(*built.labels, *built.branches, built.profiles);
  StatusOr<LoadedBranchIndex> loaded = BranchIndexFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Dictionaries: same ids, same names/keys.
  EXPECT_EQ(loaded->labels->size(), built.labels->size());
  for (LabelId id = 1; id < built.labels->id_bound(); ++id) {
    EXPECT_EQ(loaded->labels->Name(id), built.labels->Name(id));
  }
  EXPECT_EQ(loaded->branches->size(), built.branches->size());
  EXPECT_EQ(loaded->branches->q(), built.branches->q());
  for (BranchId id = 0; id < built.branches->size(); ++id) {
    EXPECT_EQ(loaded->branches->Key(id), built.branches->Key(id));
  }
  ExpectProfilesEqual(built.profiles, loaded->profiles);
}

TEST(IndexIoTest, LoadedIndexComputesIdenticalBounds) {
  const BuiltIndex built = BuildSample(30, 2, 13);
  StatusOr<LoadedBranchIndex> loaded = BranchIndexFromString(
      BranchIndexToString(*built.labels, *built.branches, built.profiles));
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < built.profiles.size(); i += 3) {
    for (size_t j = 0; j < built.profiles.size(); j += 7) {
      EXPECT_EQ(BranchDistance(built.profiles[i], built.profiles[j]),
                BranchDistance(loaded->profiles[i], loaded->profiles[j]));
      EXPECT_EQ(OptimisticBound(built.profiles[i], built.profiles[j]),
                OptimisticBound(loaded->profiles[i], loaded->profiles[j]));
    }
  }
}

TEST(IndexIoTest, QueriesExtractAgainstLoadedDictionaries) {
  // A fresh query tree profiled against the LOADED dictionaries must agree
  // with profiling against the originals.
  const BuiltIndex built = BuildSample(25, 2, 17);
  StatusOr<LoadedBranchIndex> loaded = BranchIndexFromString(
      BranchIndexToString(*built.labels, *built.branches, built.profiles));
  ASSERT_TRUE(loaded.ok());
  DblpGenerator gen(DblpParams{}, built.labels, 999);
  // Rebuild the query in the loaded dictionary via bracket round trip.
  Tree query_orig = gen.Next();
  StatusOr<Tree> query_loaded =
      ParseBracket(ToBracket(query_orig), loaded->labels);
  ASSERT_TRUE(query_loaded.ok());
  const BranchProfile p_orig =
      BranchProfile::FromTree(query_orig, *built.branches);
  const BranchProfile p_loaded =
      BranchProfile::FromTree(*query_loaded, *loaded->branches);
  for (size_t i = 0; i < built.profiles.size(); ++i) {
    EXPECT_EQ(BranchDistance(p_orig, built.profiles[i]),
              BranchDistance(p_loaded, loaded->profiles[i]));
  }
}

TEST(IndexIoTest, QLevelRoundTrip) {
  const BuiltIndex built = BuildSample(15, 3, 19);
  StatusOr<LoadedBranchIndex> loaded = BranchIndexFromString(
      BranchIndexToString(*built.labels, *built.branches, built.profiles));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->branches->q(), 3);
  EXPECT_EQ(loaded->branches->key_length(), 7);
  ExpectProfilesEqual(built.profiles, loaded->profiles);
}

TEST(IndexIoTest, AwkwardLabelsSurvive) {
  auto labels = std::make_shared<LabelDictionary>();
  TreeBuilder builder(labels);
  const NodeId root = builder.AddRoot("has space");
  builder.AddChild(root, "back\\slash");
  builder.AddChild(root, "line\nbreak");
  const Tree t = std::move(builder).Build();
  BranchDictionary branches(2);
  std::vector<BranchProfile> profiles = {
      BranchProfile::FromTree(t, branches)};
  StatusOr<LoadedBranchIndex> loaded = BranchIndexFromString(
      BranchIndexToString(*labels, branches, profiles));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->labels->Name(1), "has space");
  EXPECT_EQ(loaded->labels->Name(2), "back\\slash");
  EXPECT_EQ(loaded->labels->Name(3), "line\nbreak");
}

TEST(IndexIoTest, FileRoundTrip) {
  const BuiltIndex built = BuildSample(20, 2, 23);
  const std::string path = ::testing::TempDir() + "/treesim_index_test.idx";
  ASSERT_TRUE(
      SaveBranchIndex(*built.labels, *built.branches, built.profiles, path)
          .ok());
  StatusOr<LoadedBranchIndex> loaded = LoadBranchIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectProfilesEqual(built.profiles, loaded->profiles);
  std::remove(path.c_str());
}

TEST(IndexIoTest, RejectsCorruptedInput) {
  const BuiltIndex built = BuildSample(5, 2, 29);
  const std::string good =
      BranchIndexToString(*built.labels, *built.branches, built.profiles);

  EXPECT_FALSE(BranchIndexFromString("").ok());
  EXPECT_FALSE(BranchIndexFromString("garbage").ok());
  EXPECT_FALSE(BranchIndexFromString("treesim-branch-index 2\n").ok());

  // Truncations must fail or load cleanly — never crash.
  for (size_t cut = 0; cut < good.size(); cut += 17) {
    (void)BranchIndexFromString(good.substr(0, cut));
  }

  // Tampered numbers.
  std::string bad = good;
  const size_t at = bad.find("\nq 2");
  ASSERT_NE(at, std::string::npos);
  bad.replace(at, 4, "\nq 1");
  EXPECT_FALSE(BranchIndexFromString(bad).ok());
}

TEST(IndexIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadBranchIndex("/no/such/index.idx").ok());
}

}  // namespace
}  // namespace treesim
