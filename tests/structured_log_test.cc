// Schema-validation tests for the structured query log
// (util/structured_log.h): every line the engines emit must be a
// self-contained JSON object carrying the documented keys with sane values.
// The emitters build JSON by string append, so the checks here go through
// the independent parser in tests/json_validator.h. Under
// -DTREESIM_METRICS=OFF the sink is compiled out; the file-driven tests
// then assert the stub behavior instead (OpenFile fails, nothing written).
#include "util/structured_log.h"

#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "datagen/synthetic_generator.h"
#include "filters/bibranch_filter.h"
#include "json_validator.h"
#include "search/similarity_join.h"
#include "search/similarity_search.h"
#include "util/metrics.h"

namespace treesim {
namespace {

using test::JsonValue;
using test::ParseJson;

std::unique_ptr<TreeDatabase> MakeSyntheticDatabase(int count, int size_mean,
                                                    uint64_t seed) {
  auto labels = std::make_shared<LabelDictionary>();
  SyntheticParams params;
  params.size_mean = size_mean;
  params.label_count = 6;
  SyntheticGenerator gen(params, labels, seed);
  auto db = std::make_unique<TreeDatabase>(labels);
  db->AddAll(gen.GenerateDataset(count));
  return db;
}

std::string TempLogPath(const char* tag) {
  return ::testing::TempDir() + "/structured_log_test_" + tag + ".jsonl";
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return lines;
  std::string current;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(static_cast<char>(c));
    }
  }
  if (!current.empty()) lines.push_back(current);
  std::fclose(f);
  return lines;
}

TEST(LogRecordTest, RendersTypedFieldsInCallOrder) {
  LogRecord rec;
  rec.Str("event", "range").Int("tau", 3).Double("ratio", 0.5).Bool("slow",
                                                                    false);
  EXPECT_EQ(rec.ToJsonLine(),
            "{\"event\":\"range\",\"tau\":3,\"ratio\":0.5,\"slow\":false}");
}

TEST(LogRecordTest, EscapesStringsAndParsesBack) {
  LogRecord rec;
  rec.Str("path", "a\\b").Str("quote", "say \"hi\"").Str("ctl", "a\nb\tc");
  JsonValue doc;
  ASSERT_TRUE(ParseJson(rec.ToJsonLine(), &doc));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("path")->string_value, "a\\b");
  EXPECT_EQ(doc.Find("quote")->string_value, "say \"hi\"");
  EXPECT_EQ(doc.Find("ctl")->string_value, "a\nb\tc");
}

TEST(LogRecordTest, NonFiniteDoublesBecomeNull) {
  LogRecord rec;
  rec.Double("nan", 0.0 / 0.0);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(rec.ToJsonLine(), &doc));
  EXPECT_EQ(doc.Find("nan")->kind, JsonValue::Kind::kNull);
}

TEST(StructuredLogTest, DisabledSinkWritesNothing) {
  StructuredLog& log = StructuredLog::Global();
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.ShouldLog(1'000'000));
  LogRecord rec;
  rec.Str("event", "ignored");
  log.Write(rec);  // must be a silent no-op
}

#if TREESIM_METRICS_ENABLED

// The required key set for every engine-emitted record (the contract
// DESIGN.md documents); "tau"/"k" are event-specific and checked per event.
const char* const kRequiredKeys[] = {
    "ts_micros", "event",         "query_id",     "filter",
    "database_size", "candidates", "refined",     "results",
    "filter_micros", "refine_micros", "total_micros", "slow"};

void ValidateQueryRecord(const std::string& line) {
  JsonValue doc;
  ASSERT_TRUE(ParseJson(line, &doc)) << "unparseable log line: " << line;
  ASSERT_TRUE(doc.is_object());
  for (const char* key : kRequiredKeys) {
    EXPECT_TRUE(doc.Has(key)) << "missing key '" << key << "' in: " << line;
  }
  // Counters are non-negative and the candidate funnel only narrows.
  const double database_size = doc.Find("database_size")->number_value;
  const double candidates = doc.Find("candidates")->number_value;
  const double refined = doc.Find("refined")->number_value;
  const double results = doc.Find("results")->number_value;
  EXPECT_GE(database_size, 0);
  EXPECT_GE(candidates, 0);
  EXPECT_GE(refined, 0);
  EXPECT_GE(results, 0);
  EXPECT_LE(candidates, database_size);
  EXPECT_LE(results, database_size);
  EXPECT_GE(doc.Find("filter_micros")->number_value, 0);
  EXPECT_GE(doc.Find("refine_micros")->number_value, 0);
  EXPECT_GE(doc.Find("total_micros")->number_value, 0);
  EXPECT_GE(doc.Find("query_id")->number_value, 0);
  EXPECT_TRUE(doc.Find("slow")->is_bool());
}

TEST(StructuredLogTest, QueryPathsEmitValidRecords) {
  const std::string path = TempLogPath("queries");
  StructuredLog& log = StructuredLog::Global();
  ASSERT_TRUE(log.OpenFile(path).ok());
  const int64_t before = log.records_written();

  auto db = MakeSyntheticDatabase(/*count=*/40, /*size_mean=*/10, /*seed=*/11);
  SimilaritySearch engine(db.get(), std::make_unique<BiBranchFilter>());
  const Tree query = db->tree(0);
  (void)engine.Range(query, 3);
  (void)engine.Knn(query, 4);
  (void)engine.BatchKnn({query, db->tree(1)}, 2);
  SimilarityJoin join(db.get(), std::make_unique<BiBranchFilter>());
  (void)join.SelfJoin(1);
  log.Close();

  const std::vector<std::string> lines = ReadLines(path);
  // range + knn + (2 knn + 1 summary from BatchKnn) + self_join = 6.
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_EQ(log.records_written() - before, 6);
  for (const std::string& line : lines) ValidateQueryRecord(line);

  // Event-specific keys and monotonically increasing query ids.
  JsonValue range_doc, knn_doc, batch_doc, join_doc;
  ASSERT_TRUE(ParseJson(lines[0], &range_doc));
  ASSERT_TRUE(ParseJson(lines[1], &knn_doc));
  ASSERT_TRUE(ParseJson(lines[4], &batch_doc));
  ASSERT_TRUE(ParseJson(lines[5], &join_doc));
  EXPECT_EQ(range_doc.Find("event")->string_value, "range");
  EXPECT_TRUE(range_doc.Has("tau"));
  EXPECT_EQ(knn_doc.Find("event")->string_value, "knn");
  EXPECT_TRUE(knn_doc.Has("k"));
  EXPECT_TRUE(knn_doc.Has("bound_gap_mean"));
  EXPECT_EQ(batch_doc.Find("event")->string_value, "batch_knn");
  EXPECT_TRUE(batch_doc.Has("queries"));
  EXPECT_EQ(join_doc.Find("event")->string_value, "self_join");
  // Ids are allocated (on the calling thread) at query ENTRY, not at log
  // write: range, knn, then the batch context, then its two member knn
  // queries, then the self join. The batch summary is written after its
  // members but keeps the batch's earlier id — that is the join key the
  // trace spans and flight records for the batch carry too.
  const double base = range_doc.Find("query_id")->number_value;
  EXPECT_GT(base, 0);
  EXPECT_EQ(knn_doc.Find("query_id")->number_value, base + 1);
  EXPECT_EQ(batch_doc.Find("query_id")->number_value, base + 2);
  JsonValue member0_doc, member1_doc;
  ASSERT_TRUE(ParseJson(lines[2], &member0_doc));
  ASSERT_TRUE(ParseJson(lines[3], &member1_doc));
  EXPECT_EQ(member0_doc.Find("query_id")->number_value, base + 3);
  EXPECT_EQ(member1_doc.Find("query_id")->number_value, base + 4);
  EXPECT_EQ(join_doc.Find("query_id")->number_value, base + 5);
  std::remove(path.c_str());
}

TEST(StructuredLogTest, SlowQueryThresholdFilters) {
  const std::string path = TempLogPath("slow");
  StructuredLog& log = StructuredLog::Global();
  // A threshold no real query here reaches: nothing may be written.
  log.set_slow_query_micros(60'000'000);
  ASSERT_TRUE(log.OpenFile(path).ok());
  auto db = MakeSyntheticDatabase(20, 8, 13);
  SimilaritySearch engine(db.get(), std::make_unique<BiBranchFilter>());
  (void)engine.Range(db->tree(0), 2);
  log.Close();
  log.set_slow_query_micros(0);
  EXPECT_TRUE(ReadLines(path).empty());
  std::remove(path.c_str());
}

TEST(StructuredLogTest, IsSlowRespectsThreshold) {
  StructuredLog& log = StructuredLog::Global();
  log.set_slow_query_micros(0);
  EXPECT_FALSE(log.IsSlow(5'000'000)) << "zero threshold means never slow";
  log.set_slow_query_micros(1000);
  EXPECT_FALSE(log.IsSlow(999));
  EXPECT_TRUE(log.IsSlow(1000));
  log.set_slow_query_micros(0);
}

TEST(StructuredLogTest, OpenFileFailsOnBadPath) {
  StructuredLog& log = StructuredLog::Global();
  EXPECT_FALSE(log.OpenFile("/no/such/dir/query.jsonl").ok());
  EXPECT_FALSE(log.enabled());
}

#else  // !TREESIM_METRICS_ENABLED

TEST(StructuredLogTest, CompiledOutStubRefusesToOpen) {
  StructuredLog& log = StructuredLog::Global();
  const Status status = log.OpenFile(TempLogPath("off"));
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.ShouldLog(0));
  EXPECT_FALSE(log.IsSlow(1'000'000'000));
  EXPECT_EQ(log.records_written(), 0);
}

TEST(StructuredLogTest, CompiledOutQueriesWriteNothing) {
  auto db = MakeSyntheticDatabase(20, 8, 13);
  SimilaritySearch engine(db.get(), std::make_unique<BiBranchFilter>());
  (void)engine.Range(db->tree(0), 2);
  EXPECT_EQ(StructuredLog::Global().records_written(), 0);
}

#endif  // TREESIM_METRICS_ENABLED

}  // namespace
}  // namespace treesim
