// Property tests for the paper's central claims: Theorem 3.2 (BDist is at
// most 5x the edit distance), Theorem 3.3 (the q-level generalization),
// Proposition 4.1 (mapping displacement) and Proposition 4.2 / the
// SearchLBound optimistic bound (positional distances stay sound).
#include <algorithm>
#include <memory>

#include "gtest/gtest.h"
#include "core/branch_profile.h"
#include "core/positional.h"
#include "datagen/edit_noise.h"
#include "ted/edit_operation.h"
#include "ted/zhang_shasha.h"
#include "test_util.h"
#include "tree/bracket.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

struct PropertyCase {
  int label_count;
  int max_size;
};

class LowerBoundPropertyTest
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(LowerBoundPropertyTest, Theorem32_BDistAtMost5TimesEDist) {
  const PropertyCase param = GetParam();
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, param.label_count);
  Rng rng(1000 + param.label_count * 100 + param.max_size);
  BranchDictionary branches(2);
  for (int trial = 0; trial < 60; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, param.max_size), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, param.max_size), pool, dict, rng);
    const int edist = TreeEditDistance(a, b);
    const int64_t bdist =
        BranchDistance(BranchProfile::FromTree(a, branches),
                       BranchProfile::FromTree(b, branches));
    EXPECT_LE(bdist, 5 * static_cast<int64_t>(edist))
        << ToBracket(a) << " vs " << ToBracket(b);
  }
}

TEST_P(LowerBoundPropertyTest, Theorem33_QLevelBound) {
  const PropertyCase param = GetParam();
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, param.label_count);
  Rng rng(2000 + param.label_count * 100 + param.max_size);
  for (int q = 2; q <= 4; ++q) {
    BranchDictionary branches(q);
    const int factor = branches.edit_distance_factor();
    for (int trial = 0; trial < 25; ++trial) {
      Tree a = RandomTree(rng.UniformInt(1, param.max_size), pool, dict, rng);
      Tree b = RandomTree(rng.UniformInt(1, param.max_size), pool, dict, rng);
      const int edist = TreeEditDistance(a, b);
      const int64_t bdist =
          BranchDistance(BranchProfile::FromTree(a, branches),
                         BranchProfile::FromTree(b, branches));
      EXPECT_LE(bdist, static_cast<int64_t>(factor) * edist)
          << "q=" << q << " " << ToBracket(a) << " vs " << ToBracket(b);
    }
  }
}

TEST_P(LowerBoundPropertyTest, OptimisticBoundNeverExceedsEDist) {
  const PropertyCase param = GetParam();
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, param.label_count);
  Rng rng(3000 + param.label_count * 100 + param.max_size);
  for (int q = 2; q <= 3; ++q) {
    BranchDictionary branches(q);
    for (int trial = 0; trial < 40; ++trial) {
      Tree a = RandomTree(rng.UniformInt(1, param.max_size), pool, dict, rng);
      Tree b = RandomTree(rng.UniformInt(1, param.max_size), pool, dict, rng);
      const BranchProfile pa = BranchProfile::FromTree(a, branches);
      const BranchProfile pb = BranchProfile::FromTree(b, branches);
      const int edist = TreeEditDistance(a, b);
      for (const MatchingMode mode :
           {MatchingMode::kExact, MatchingMode::kGreedy,
            MatchingMode::kAuto}) {
        const int propt = OptimisticBound(pa, pb, mode);
        EXPECT_LE(propt, edist)
            << "q=" << q << " mode=" << static_cast<int>(mode) << " "
            << ToBracket(a) << " vs " << ToBracket(b);
        EXPECT_GE(propt, BranchDistanceLowerBound(pa, pb));
      }
    }
  }
}

TEST_P(LowerBoundPropertyTest, Proposition42_RangeFilterNeverDropsResults) {
  const PropertyCase param = GetParam();
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, param.label_count);
  Rng rng(4000 + param.label_count * 100 + param.max_size);
  BranchDictionary branches(2);
  for (int trial = 0; trial < 40; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, param.max_size), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, param.max_size), pool, dict, rng);
    const BranchProfile pa = BranchProfile::FromTree(a, branches);
    const BranchProfile pb = BranchProfile::FromTree(b, branches);
    const int edist = TreeEditDistance(a, b);
    for (int tau = edist; tau <= edist + 3; ++tau) {
      // EDist <= tau, so the filter MUST pass (no false negatives).
      EXPECT_TRUE(RangeFilterPasses(pa, pb, tau, MatchingMode::kExact));
      EXPECT_TRUE(RangeFilterPasses(pa, pb, tau, MatchingMode::kGreedy));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LowerBoundPropertyTest,
    ::testing::Values(PropertyCase{1, 12},   // pure structure, tiny
                      PropertyCase{2, 20},   // few labels
                      PropertyCase{4, 30},   // mixed
                      PropertyCase{8, 45},   // paper-like label count
                      PropertyCase{20, 25}), // label-rich
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "L" + std::to_string(info.param.label_count) + "_n" +
             std::to_string(info.param.max_size);
    });

TEST(SingleOperationTest, Theorem32CaseSplit) {
  // Relabel changes BDist by at most 4; insert/delete by at most 5.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 4);
  Rng rng(271);
  BranchDictionary branches(2);
  int relabels = 0;
  int inserts = 0;
  int deletes = 0;
  for (int trial = 0; trial < 400; ++trial) {
    Tree t = RandomTree(rng.UniformInt(2, 35), pool, dict, rng);
    const EditOperation op = RandomEditOperation(t, pool, rng);
    StatusOr<Tree> edited = ApplyEditOperation(t, op);
    ASSERT_TRUE(edited.ok());
    const int64_t delta =
        BranchDistance(BranchProfile::FromTree(t, branches),
                       BranchProfile::FromTree(*edited, branches));
    switch (op.kind) {
      case EditOperation::Kind::kRelabel:
        EXPECT_LE(delta, 4) << ToBracket(t) << " op "
                            << ToString(op, *dict);
        ++relabels;
        break;
      case EditOperation::Kind::kInsert:
        EXPECT_LE(delta, 5) << ToBracket(t) << " op "
                            << ToString(op, *dict);
        ++inserts;
        break;
      case EditOperation::Kind::kDelete:
        EXPECT_LE(delta, 5) << ToBracket(t) << " op "
                            << ToString(op, *dict);
        ++deletes;
        break;
    }
  }
  // All three cases exercised.
  EXPECT_GT(relabels, 50);
  EXPECT_GT(inserts, 50);
  EXPECT_GT(deletes, 50);
}

TEST(SingleOperationTest, QLevelCaseSplit) {
  // One operation changes BDist_Q by at most 4(q-1)+1.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 4);
  Rng rng(277);
  for (int q = 2; q <= 4; ++q) {
    BranchDictionary branches(q);
    const int factor = branches.edit_distance_factor();
    for (int trial = 0; trial < 120; ++trial) {
      Tree t = RandomTree(rng.UniformInt(2, 30), pool, dict, rng);
      const EditOperation op = RandomEditOperation(t, pool, rng);
      StatusOr<Tree> edited = ApplyEditOperation(t, op);
      ASSERT_TRUE(edited.ok());
      const int64_t delta =
          BranchDistance(BranchProfile::FromTree(t, branches),
                         BranchProfile::FromTree(*edited, branches));
      EXPECT_LE(delta, factor)
          << "q=" << q << " " << ToBracket(t) << " op " << ToString(op, *dict);
    }
  }
}

TEST(EditScriptBoundTest, ScriptsOfKnownLengthRespectAllBounds) {
  // Derive trees by scripts of known length k; every lower bound must stay
  // below k (since EDist <= k), without ever computing EDist.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 5);
  Rng rng(281);
  for (int trial = 0; trial < 60; ++trial) {
    Tree t = RandomTree(rng.UniformInt(5, 60), pool, dict, rng);
    const int k = rng.UniformInt(0, 8);
    const NoisyTree noisy = ApplyRandomEdits(t, k, pool, rng);
    for (int q = 2; q <= 3; ++q) {
      BranchDictionary branches(q);
      const BranchProfile pa = BranchProfile::FromTree(t, branches);
      const BranchProfile pb = BranchProfile::FromTree(noisy.tree, branches);
      EXPECT_LE(BranchDistance(pa, pb),
                static_cast<int64_t>(branches.edit_distance_factor()) * k);
      EXPECT_LE(BranchDistanceLowerBound(pa, pb), k);
      EXPECT_LE(OptimisticBound(pa, pb, MatchingMode::kExact), k);
      EXPECT_LE(OptimisticBound(pa, pb, MatchingMode::kGreedy), k);
      // Proposition 4.2 contrapositive at l = k.
      EXPECT_LE(PositionalBranchDistance(pa, pb, k, MatchingMode::kExact),
                static_cast<int64_t>(branches.edit_distance_factor()) * k);
    }
  }
}

TEST(Proposition41Test, MappedNodePositionsShiftByAtMostEDist) {
  // Indirect check of Proposition 4.1 via the positional filter at
  // pr = EDist: PosBDist(EDist) <= 5 * EDist must hold with EXACT matching,
  // which is precisely "the edit mapping only pairs nodes whose preorder
  // and postorder positions differ by <= EDist".
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(283);
  BranchDictionary branches(2);
  for (int trial = 0; trial < 60; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 25), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 25), pool, dict, rng);
    const int edist = TreeEditDistance(a, b);
    const BranchProfile pa = BranchProfile::FromTree(a, branches);
    const BranchProfile pb = BranchProfile::FromTree(b, branches);
    EXPECT_LE(PositionalBranchDistance(pa, pb, edist, MatchingMode::kExact),
              5 * static_cast<int64_t>(edist))
        << ToBracket(a) << " vs " << ToBracket(b);
  }
}

// The Section 2.1 extension: with a general cost model whose operations all
// cost at least c_min, scaling the unit-cost lower bound by c_min stays a
// lower bound of the weighted edit distance (any weighted-optimal script
// has at least EDist_unit operations, each costing >= c_min).
class SkewedCostModel final : public CostModel {
 public:
  double Relabel(LabelId a, LabelId b) const override {
    if (a == b) return 0.0;
    return 0.5 + 0.25 * ((a + b) % 3);  // 0.5 / 0.75 / 1.0
  }
  double Insert(LabelId l) const override { return 0.5 + 0.5 * (l % 2); }
  double Delete(LabelId l) const override { return 0.5 + 0.25 * (l % 3); }
  double MinOperationCost() const override { return 0.5; }
};

TEST(WeightedCostExtensionTest, ScaledBoundsStaySound) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 4);
  Rng rng(307);
  BranchDictionary branches(2);
  const SkewedCostModel costs;
  for (int trial = 0; trial < 50; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 22), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 22), pool, dict, rng);
    const double weighted = TreeEditDistanceWeighted(
        TedTree::FromTree(a), TedTree::FromTree(b), costs);
    const BranchProfile pa = BranchProfile::FromTree(a, branches);
    const BranchProfile pb = BranchProfile::FromTree(b, branches);
    const double c_min = costs.MinOperationCost();
    EXPECT_LE(c_min * BranchDistanceLowerBound(pa, pb), weighted + 1e-9)
        << ToBracket(a) << " vs " << ToBracket(b);
    EXPECT_LE(c_min * OptimisticBound(pa, pb), weighted + 1e-9)
        << ToBracket(a) << " vs " << ToBracket(b);
    // And the weighted distance itself is sandwiched sanely.
    EXPECT_LE(weighted, 1.0 * (a.size() + b.size()));
    EXPECT_GE(weighted + 1e-9, c_min * std::abs(a.size() - b.size()));
  }
}

TEST(TightnessTest, BoundsAreAttainedSomewhere) {
  // The 5x factor is not vacuous: find pairs where BDist/EDist > 3 and
  // pairs where the optimistic bound equals EDist exactly.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(293);
  BranchDictionary branches(2);
  double best_ratio = 0;
  int exact_hits = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Tree a = RandomTree(rng.UniformInt(2, 20), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(2, 20), pool, dict, rng);
    const int edist = TreeEditDistance(a, b);
    if (edist == 0) continue;
    const BranchProfile pa = BranchProfile::FromTree(a, branches);
    const BranchProfile pb = BranchProfile::FromTree(b, branches);
    best_ratio = std::max(
        best_ratio, static_cast<double>(BranchDistance(pa, pb)) / edist);
    if (OptimisticBound(pa, pb) == edist) ++exact_hits;
  }
  EXPECT_GT(best_ratio, 2.0);
  EXPECT_GT(exact_hits, 0);
}

}  // namespace
}  // namespace treesim
