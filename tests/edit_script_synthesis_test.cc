#include "ted/edit_script_synthesis.h"

#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"
#include "ted/zhang_shasha.h"
#include "tree/bracket.h"
#include "tree/traversal.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

/// Replays the script and checks it reproduces t2 with |script| == cost.
void ExpectScriptTransforms(const Tree& t1, const Tree& t2) {
  const EditMapping mapping = ComputeEditMapping(t1, t2);
  StatusOr<std::vector<EditOperation>> script =
      SynthesizeEditScript(t1, t2, mapping);
  if (!script.ok() &&
      script.status().code() == StatusCode::kUnimplemented) {
    return;  // root-replacement mapping: documented limitation
  }
  ASSERT_TRUE(script.ok()) << script.status() << "  " << ToBracket(t1)
                           << " -> " << ToBracket(t2);
  EXPECT_EQ(static_cast<int>(script->size()), mapping.cost);
  StatusOr<Tree> result = ApplyEditScript(t1, *script);
  ASSERT_TRUE(result.ok()) << result.status() << "  " << ToBracket(t1)
                           << " -> " << ToBracket(t2);
  EXPECT_TRUE(result->StructurallyEquals(t2))
      << ToBracket(t1) << " -> " << ToBracket(*result) << " wanted "
      << ToBracket(t2);
}

TEST(EditScriptSynthesisTest, IdenticalTreesGiveEmptyScript) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b{c} d}", dict);
  StatusOr<std::vector<EditOperation>> script = ComputeEditScript(t, t);
  ASSERT_TRUE(script.ok());
  EXPECT_TRUE(script->empty());
}

TEST(EditScriptSynthesisTest, PureRelabels) {
  auto dict = std::make_shared<LabelDictionary>();
  ExpectScriptTransforms(MakeTree("a{b c}", dict), MakeTree("x{b z}", dict));
}

TEST(EditScriptSynthesisTest, PureDeletions) {
  auto dict = std::make_shared<LabelDictionary>();
  ExpectScriptTransforms(MakeTree("a{b{c d} e{f}}", dict),
                         MakeTree("a{c d e}", dict));
}

TEST(EditScriptSynthesisTest, PureInsertions) {
  auto dict = std::make_shared<LabelDictionary>();
  ExpectScriptTransforms(MakeTree("a{c d e}", dict),
                         MakeTree("a{b{c d} e{f}}", dict));
}

TEST(EditScriptSynthesisTest, PaperExamplePair) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t1 = MakeTree("a{b{c d} b{c d} e}", dict);
  Tree t2 = MakeTree("a{b{c d b{e}} c d e}", dict);
  const EditMapping m = ComputeEditMapping(t1, t2);
  StatusOr<std::vector<EditOperation>> script =
      SynthesizeEditScript(t1, t2, m);
  ASSERT_TRUE(script.ok()) << script.status();
  EXPECT_EQ(script->size(), 3u);  // EDist(T1, T2) = 3
  StatusOr<Tree> replayed = ApplyEditScript(t1, *script);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed->StructurallyEquals(t2));
}

TEST(EditScriptSynthesisTest, RandomPairsRoundTrip) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(1401);
  int synthesized = 0;
  for (int trial = 0; trial < 120; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 20), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 20), pool, dict, rng);
    const EditMapping mapping = ComputeEditMapping(a, b);
    StatusOr<std::vector<EditOperation>> script =
        SynthesizeEditScript(a, b, mapping);
    if (!script.ok()) {
      EXPECT_EQ(script.status().code(), StatusCode::kUnimplemented)
          << script.status();
      continue;
    }
    ++synthesized;
    EXPECT_EQ(static_cast<int>(script->size()), mapping.cost);
    StatusOr<Tree> result = ApplyEditScript(a, *script);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->StructurallyEquals(b))
        << ToBracket(a) << " -> " << ToBracket(b);
  }
  EXPECT_GT(synthesized, 60);  // root-replacement mappings are the minority
}

TEST(EditScriptSynthesisTest, SingleLabelStructuralPairs) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 1);
  Rng rng(1409);
  for (int trial = 0; trial < 60; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 14), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 14), pool, dict, rng);
    ExpectScriptTransforms(a, b);
  }
}

TEST(EditScriptSynthesisTest, ScriptLengthEqualsEditDistance) {
  // Where synthesis succeeds, it constructively proves EDist(T1,T2) ops
  // suffice: |script| == mapping cost == exact distance.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 4);
  Rng rng(1423);
  for (int trial = 0; trial < 40; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 18), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 18), pool, dict, rng);
    StatusOr<std::vector<EditOperation>> script = ComputeEditScript(a, b);
    if (!script.ok()) continue;
    EXPECT_EQ(static_cast<int>(script->size()), TreeEditDistance(a, b));
  }
}

TEST(EditScriptSynthesisTest, RejectsInvalidMapping) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b c}", dict);
  Tree b = MakeTree("a{b c}", dict);
  EditMapping broken = ComputeEditMapping(a, b);
  ASSERT_GE(broken.pairs.size(), 2u);
  std::swap(broken.pairs[0].second, broken.pairs[1].second);
  StatusOr<std::vector<EditOperation>> script =
      SynthesizeEditScript(a, b, broken);
  ASSERT_FALSE(script.ok());
  EXPECT_EQ(script.status().code(), StatusCode::kInvalidArgument);
}

TEST(EditScriptSynthesisTest, RejectsEmptyTrees) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a", dict);
  Tree empty;
  EXPECT_FALSE(SynthesizeEditScript(empty, t, EditMapping{}).ok());
}

TEST(EditScriptSynthesisTest, ApplyEditOperationNumbersNodesInPreorder) {
  // The guarantee the synthesizer's addressing relies on.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(1427);
  for (int trial = 0; trial < 30; ++trial) {
    // Build a BFS-ordered tree (ids deliberately not preorder).
    TreeBuilder builder(dict);
    const NodeId root = builder.AddRootId(pool[0]);
    builder.AddChildId(root, pool[1]);
    const NodeId second = builder.AddChildId(root, pool[2]);
    builder.AddChildId(1, pool[0]);  // child of first child: id 3 > sibling 2
    builder.AddChildId(second, pool[1]);
    Tree t = std::move(builder).Build();
    const LabelId x = pool[rng.UniformIndex(pool.size())];
    StatusOr<Tree> edited = ApplyEditOperation(
        t, EditOperation::MakeRelabel(
               static_cast<NodeId>(rng.UniformIndex(
                   static_cast<size_t>(t.size()))),
               x));
    ASSERT_TRUE(edited.ok());
    const std::vector<NodeId> pre = PreorderSequence(*edited);
    for (size_t i = 0; i < pre.size(); ++i) {
      EXPECT_EQ(pre[i], static_cast<NodeId>(i));
    }
  }
}

}  // namespace
}  // namespace treesim
