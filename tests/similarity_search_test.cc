#include "search/similarity_search.h"

#include <memory>
#include <set>

#include "gtest/gtest.h"
#include "datagen/synthetic_generator.h"
#include "filters/bibranch_filter.h"
#include "filters/histogram_filter.h"
#include "filters/sequence_filter.h"
#include "test_util.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

std::unique_ptr<TreeDatabase> BuildRandomDb(
    const std::shared_ptr<LabelDictionary>& dict,
    const std::vector<LabelId>& pool, int count, int max_size, Rng& rng) {
  auto db = std::make_unique<TreeDatabase>(dict);
  for (int i = 0; i < count; ++i) {
    db->Add(RandomTree(rng.UniformInt(1, max_size), pool, dict, rng));
  }
  return db;
}

TEST(TreeDatabaseTest, BasicAccessors) {
  auto dict = std::make_shared<LabelDictionary>();
  TreeDatabase db(dict);
  EXPECT_EQ(db.size(), 0);
  const int id = db.Add(MakeTree("a{b c}", dict));
  EXPECT_EQ(id, 0);
  EXPECT_EQ(db.size(), 1);
  EXPECT_EQ(db.tree(0).size(), 3);
  EXPECT_EQ(db.ted_view(0).size(), 3);
  EXPECT_DOUBLE_EQ(db.AverageTreeSize(), 3.0);
}

TEST(TreeDatabaseTest, AverageDistanceEstimate) {
  auto dict = std::make_shared<LabelDictionary>();
  TreeDatabase db(dict);
  db.Add(MakeTree("a", dict));
  db.Add(MakeTree("a{b}", dict));  // distance 1 in both directions
  Rng rng(3);
  EXPECT_DOUBLE_EQ(db.EstimateAverageDistance(rng, 50), 1.0);
}

TEST(TreeDatabaseDeathTest, ForeignDictionaryRejected) {
  auto dict1 = std::make_shared<LabelDictionary>();
  auto dict2 = std::make_shared<LabelDictionary>();
  TreeDatabase db(dict1);
  Tree alien = MakeTree("a", dict2);
  EXPECT_DEATH(db.Add(alien), "label dictionary");
}

class SearchEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dict_ = std::make_shared<LabelDictionary>();
    pool_ = MakeLabelPool(dict_, 5);
    rng_ = std::make_unique<Rng>(501);
    db_ = BuildRandomDb(dict_, pool_, 60, 25, *rng_);
    sequential_ = std::make_unique<SimilaritySearch>(db_.get(), nullptr);
  }

  std::vector<std::unique_ptr<SimilaritySearch>> AllFiltered() {
    std::vector<std::unique_ptr<SimilaritySearch>> out;
    out.push_back(std::make_unique<SimilaritySearch>(
        db_.get(), std::make_unique<BiBranchFilter>()));
    BiBranchFilter::Options plain;
    plain.positional = false;
    out.push_back(std::make_unique<SimilaritySearch>(
        db_.get(), std::make_unique<BiBranchFilter>(plain)));
    BiBranchFilter::Options q3;
    q3.q = 3;
    out.push_back(std::make_unique<SimilaritySearch>(
        db_.get(), std::make_unique<BiBranchFilter>(q3)));
    out.push_back(std::make_unique<SimilaritySearch>(
        db_.get(), std::make_unique<HistogramFilter>()));
    out.push_back(std::make_unique<SimilaritySearch>(
        db_.get(), std::make_unique<SequenceFilter>()));
    SequenceFilter::Options seq_ed;
    seq_ed.mode = SequenceFilter::Options::Mode::kEditDistance;
    out.push_back(std::make_unique<SimilaritySearch>(
        db_.get(), std::make_unique<SequenceFilter>(seq_ed)));
    return out;
  }

  std::shared_ptr<LabelDictionary> dict_;
  std::vector<LabelId> pool_;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<TreeDatabase> db_;
  std::unique_ptr<SimilaritySearch> sequential_;
};

TEST_F(SearchEquivalenceTest, RangeResultsMatchSequentialScan) {
  std::vector<std::unique_ptr<SimilaritySearch>> engines = AllFiltered();
  for (int qi = 0; qi < 10; ++qi) {
    Tree query = RandomTree(rng_->UniformInt(1, 25), pool_, dict_, *rng_);
    for (const int tau : {0, 1, 3, 6, 12}) {
      const RangeResult expected = sequential_->Range(query, tau);
      EXPECT_EQ(expected.stats.candidates, db_->size());
      for (auto& engine : engines) {
        const RangeResult got = engine->Range(query, tau);
        EXPECT_EQ(got.matches, expected.matches)
            << engine->filter_name() << " tau=" << tau;
        // The filter must never refine more trees than the sequential scan.
        EXPECT_LE(got.stats.candidates, expected.stats.candidates);
        EXPECT_GE(got.stats.candidates, got.stats.results);
      }
    }
  }
}

TEST_F(SearchEquivalenceTest, KnnResultsMatchSequentialScan) {
  std::vector<std::unique_ptr<SimilaritySearch>> engines = AllFiltered();
  for (int qi = 0; qi < 10; ++qi) {
    Tree query = RandomTree(rng_->UniformInt(1, 25), pool_, dict_, *rng_);
    for (const int k : {1, 3, 5, 20}) {
      const KnnResult expected = sequential_->Knn(query, k);
      ASSERT_EQ(static_cast<int>(expected.neighbors.size()),
                std::min(k, db_->size()));
      for (auto& engine : engines) {
        const KnnResult got = engine->Knn(query, k);
        EXPECT_EQ(got.neighbors, expected.neighbors)
            << engine->filter_name() << " k=" << k;
        EXPECT_LE(got.stats.edit_distance_calls,
                  expected.stats.edit_distance_calls);
      }
    }
  }
}

TEST_F(SearchEquivalenceTest, KnnLargerThanDatabaseReturnsAll) {
  Tree query = RandomTree(10, pool_, dict_, *rng_);
  SimilaritySearch engine(db_.get(), std::make_unique<BiBranchFilter>());
  const KnnResult r = engine.Knn(query, db_->size() + 50);
  EXPECT_EQ(static_cast<int>(r.neighbors.size()), db_->size());
  // Distances ascend.
  for (size_t i = 1; i < r.neighbors.size(); ++i) {
    EXPECT_LE(r.neighbors[i - 1].second, r.neighbors[i].second);
  }
}

TEST_F(SearchEquivalenceTest, QueryFromDatabaseFindsItself) {
  SimilaritySearch engine(db_.get(), std::make_unique<BiBranchFilter>());
  const Tree& query = db_->tree(7);
  const KnnResult r = engine.Knn(query, 1);
  ASSERT_EQ(r.neighbors.size(), 1u);
  EXPECT_EQ(r.neighbors[0].second, 0);  // distance 0 to itself

  const RangeResult rr = engine.Range(query, 0);
  bool found_self = false;
  for (const auto& [id, dist] : rr.matches) {
    if (id == 7) found_self = true;
    EXPECT_EQ(dist, 0);
  }
  EXPECT_TRUE(found_self);
}

TEST_F(SearchEquivalenceTest, StatsAreConsistent) {
  SimilaritySearch engine(db_.get(), std::make_unique<BiBranchFilter>());
  Tree query = RandomTree(12, pool_, dict_, *rng_);
  const RangeResult r = engine.Range(query, 4);
  EXPECT_EQ(r.stats.database_size, db_->size());
  EXPECT_EQ(r.stats.edit_distance_calls, r.stats.candidates);
  EXPECT_EQ(r.stats.results, static_cast<int64_t>(r.matches.size()));
  EXPECT_GE(r.stats.filter_seconds, 0.0);
  EXPECT_GE(r.stats.refine_seconds, 0.0);
  EXPECT_LE(r.stats.AccessedFraction(), 1.0);
  EXPECT_GE(r.stats.AccessedFraction(), 0.0);

  QueryStats total;
  total += r.stats;
  total += r.stats;
  EXPECT_EQ(total.candidates, 2 * r.stats.candidates);
  EXPECT_DOUBLE_EQ(total.TotalSeconds(), 2 * r.stats.TotalSeconds());
}

TEST(SearchOnClusteredDataTest, CompletenessOnEvolvedDataset) {
  // The decay-evolved dataset has many near-duplicates — the regime the
  // paper targets; verify exactness there too.
  auto dict = std::make_shared<LabelDictionary>();
  SyntheticParams params;
  params.size_mean = 18;
  params.label_count = 6;
  params.seed_count = 4;
  SyntheticGenerator gen(params, dict, 901);
  auto db = std::make_unique<TreeDatabase>(dict);
  for (Tree& t : gen.GenerateDataset(50)) db->Add(std::move(t));

  SimilaritySearch sequential(db.get(), nullptr);
  SimilaritySearch bibranch(db.get(), std::make_unique<BiBranchFilter>());
  SimilaritySearch histo(db.get(), std::make_unique<HistogramFilter>());

  for (int qi = 0; qi < 8; ++qi) {
    const Tree& query = db->tree(qi * 6);
    for (const int tau : {1, 2, 4}) {
      const RangeResult expected = sequential.Range(query, tau);
      EXPECT_EQ(bibranch.Range(query, tau).matches, expected.matches);
      EXPECT_EQ(histo.Range(query, tau).matches, expected.matches);
    }
    const KnnResult expected = sequential.Knn(query, 5);
    EXPECT_EQ(bibranch.Knn(query, 5).neighbors, expected.neighbors);
    EXPECT_EQ(histo.Knn(query, 5).neighbors, expected.neighbors);
  }
}

TEST(SearchPruningTest, BiBranchPrunesOnSeparatedClusters) {
  // Two well-separated clusters: queries from one cluster should prune most
  // of the other.
  auto dict = std::make_shared<LabelDictionary>();
  SyntheticParams pa;
  pa.size_mean = 15;
  pa.label_count = 4;
  pa.seed_count = 1;
  SyntheticGenerator gen_a(pa, dict, 31);
  SyntheticParams pb;
  pb.size_mean = 40;
  pb.label_count = 4;
  pb.seed_count = 1;
  SyntheticGenerator gen_b(pb, dict, 37);

  auto db = std::make_unique<TreeDatabase>(dict);
  for (Tree& t : gen_a.GenerateDataset(25)) db->Add(std::move(t));
  for (Tree& t : gen_b.GenerateDataset(25)) db->Add(std::move(t));

  SimilaritySearch engine(db.get(), std::make_unique<BiBranchFilter>());
  const RangeResult r = engine.Range(db->tree(3), 2);
  // At least the far cluster must be filtered out without refinement.
  EXPECT_LE(r.stats.candidates, 25);
}

}  // namespace
}  // namespace treesim
