#include "ted/tree_diff.h"

#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

TEST(TreeDiffTest, IdenticalTrees) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b c}", dict);
  Tree b = MakeTree("a{b c}", dict);
  EXPECT_EQ(RenderTreeDiff(a, b),
            "--- T1 (0 deleted, 0 relabeled)\n"
            "  a\n"
            "    b\n"
            "    c\n"
            "+++ T2 (0 inserted)\n"
            "  a\n"
            "    b\n"
            "    c\n");
}

TEST(TreeDiffTest, RelabelShowsArrow) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b c}", dict);
  Tree b = MakeTree("a{x c}", dict);
  const std::string diff = RenderTreeDiff(a, b);
  EXPECT_NE(diff.find("~   b -> x\n"), std::string::npos) << diff;
  EXPECT_NE(diff.find("~   x\n"), std::string::npos) << diff;
  EXPECT_NE(diff.find("1 relabeled"), std::string::npos);
}

TEST(TreeDiffTest, DeleteAndInsertMarkers) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b{c} d}", dict);
  Tree b = MakeTree("a{c d e}", dict);  // b deleted, e inserted
  const std::string diff = RenderTreeDiff(a, b);
  EXPECT_NE(diff.find("-   b\n"), std::string::npos) << diff;
  EXPECT_NE(diff.find("+   e\n"), std::string::npos) << diff;
  EXPECT_NE(diff.find("1 deleted"), std::string::npos);
  EXPECT_NE(diff.find("1 inserted"), std::string::npos);
}

TEST(TreeDiffTest, MarkerCountsMatchMapping) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(1501);
  for (int trial = 0; trial < 20; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 15), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 15), pool, dict, rng);
    const EditMapping m = ComputeEditMapping(a, b);
    const std::string diff = RenderTreeDiff(a, b, m);
    int deletes = 0;
    int inserts = 0;
    int relabels = 0;
    for (size_t i = 0; i < diff.size(); ++i) {
      if (i == 0 || diff[i - 1] == '\n') {
        if (diff.compare(i, 4, "--- ") == 0 ||
            diff.compare(i, 4, "+++ ") == 0) {
          continue;
        }
        if (diff[i] == '-') ++deletes;
        if (diff[i] == '+') ++inserts;
        if (diff[i] == '~') ++relabels;
      }
    }
    EXPECT_EQ(deletes, m.deletions);
    EXPECT_EQ(inserts, m.insertions);
    EXPECT_EQ(relabels, 2 * m.relabels);  // marked in both panes
  }
}

}  // namespace
}  // namespace treesim
