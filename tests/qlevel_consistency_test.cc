// Cross-checks the fast q-level branch extractor (which navigates the
// first-child/next-sibling links directly) against an independent
// implementation that walks the explicitly materialized NormalizedBinaryTree.
#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "core/binary_branch.h"
#include "core/binary_tree.h"
#include "test_util.h"
#include "tree/traversal.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;
using BNodeId = NormalizedBinaryTree::BNodeId;

/// Reference extractor: preorder label sequence of the height-(q-1) perfect
/// subtree of the materialized B(T) rooted at each original node.
std::vector<BranchKey> ReferenceBranches(const Tree& t, int q) {
  const NormalizedBinaryTree b = NormalizedBinaryTree::FromTree(t);
  std::vector<BranchKey> keys;
  // Map original NodeId -> B(T) node (original_count() == t.size()).
  std::vector<BNodeId> of_original(static_cast<size_t>(t.size()), -1);
  for (size_t i = 0; i < b.nodes().size(); ++i) {
    const NodeId orig = b.nodes()[i].original;
    if (orig != kInvalidNode) {
      of_original[static_cast<size_t>(orig)] = static_cast<BNodeId>(i);
    }
  }
  for (const NodeId u : PreorderSequence(t)) {
    BranchKey key;
    auto fill = [&](auto&& self, BNodeId node, int level) -> void {
      if (node == NormalizedBinaryTree::kNoChild) {
        // Below an ε node: a virtual all-ε perfect subtree.
        key.push_back(kEpsilonLabel);
        if (level + 1 < q) {
          self(self, NormalizedBinaryTree::kNoChild, level + 1);
          self(self, NormalizedBinaryTree::kNoChild, level + 1);
        }
        return;
      }
      key.push_back(b.nodes()[static_cast<size_t>(node)].label);
      if (level + 1 < q) {
        self(self, b.nodes()[static_cast<size_t>(node)].left, level + 1);
        self(self, b.nodes()[static_cast<size_t>(node)].right, level + 1);
      }
    };
    fill(fill, of_original[static_cast<size_t>(u)], 0);
    keys.push_back(std::move(key));
  }
  return keys;
}

TEST(QLevelConsistencyTest, FastExtractorMatchesMaterializedBinaryTree) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 4);
  Rng rng(1103);
  for (int trial = 0; trial < 25; ++trial) {
    Tree t = RandomTree(rng.UniformInt(1, 50), pool, dict, rng);
    for (int q = 2; q <= 5; ++q) {
      BranchDictionary branches(q);
      const std::vector<BranchOccurrence> fast = ExtractBranches(t, branches);
      const std::vector<BranchKey> reference = ReferenceBranches(t, q);
      ASSERT_EQ(fast.size(), reference.size());
      for (size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(branches.Key(fast[i].branch), reference[i])
            << "q=" << q << " node " << i << " of " << ToBracket(t);
      }
    }
  }
}

TEST(QLevelConsistencyTest, ChainAndStarShapes) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree chain = MakeTree("a{b{c{d{e}}}}", dict);
  Tree star = MakeTree("a{b c d e}", dict);
  for (const Tree* t : {&chain, &star}) {
    for (int q = 2; q <= 4; ++q) {
      BranchDictionary branches(q);
      const std::vector<BranchOccurrence> fast =
          ExtractBranches(*t, branches);
      const std::vector<BranchKey> reference = ReferenceBranches(*t, q);
      ASSERT_EQ(fast.size(), reference.size());
      for (size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(branches.Key(fast[i].branch), reference[i]);
      }
    }
  }
}

}  // namespace
}  // namespace treesim
