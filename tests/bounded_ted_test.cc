// Unit tests for the bounded-TED refine engine (ted/bounded_ted.h): the
// exactness/clamp contract on random pairs, threshold edge cases, the
// mirror view built for the RTED-style strategy choice, and — guarded by
// TREESIM_METRICS — that the band pruning and the per-keyroot early exit
// actually engage on the shapes they were designed for (both are easy to
// make silently dead with a too-conservative soundness condition).
#include <limits>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "ted/bounded_ted.h"
#include "ted/cost_model.h"
#include "ted/zhang_shasha.h"
#include "test_util.h"
#include "tree/tree.h"
#include "util/metrics.h"
#include "util/random.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::RandomTree;

constexpr uint64_t kSeed = 2005;  // publication year of the source paper

/// A chain of `size` nodes — single keyroot, worst case for the band.
Tree Spine(int size, const std::vector<LabelId>& pool,
           const std::shared_ptr<LabelDictionary>& labels) {
  TreeBuilder builder(labels);
  builder.AddRootId(pool[0]);
  for (int i = 1; i < size; ++i) {
    builder.AddChildId(static_cast<NodeId>(i - 1),
                       pool[static_cast<size_t>(i) % pool.size()]);
  }
  return std::move(builder).Build();
}

/// A root with `size - 1` leaf children, all drawn from `pool` round-robin.
Tree Star(int size, const std::vector<LabelId>& pool,
          const std::shared_ptr<LabelDictionary>& labels) {
  TreeBuilder builder(labels);
  builder.AddRootId(pool[0]);
  for (int i = 1; i < size; ++i) {
    builder.AddChildId(0, pool[static_cast<size_t>(i) % pool.size()]);
  }
  return std::move(builder).Build();
}

/// A spine whose every node carries one LEADING leaf (the spine child is
/// the last child): under the leftmost decomposition every spine subtree
/// is a keyroot, so the original orientation has quadratic keyroot weight
/// while the mirror's is linear — the shape the strategy choice exists for.
Tree LeftComb(int teeth, const std::vector<LabelId>& pool,
              const std::shared_ptr<LabelDictionary>& labels) {
  TreeBuilder builder(labels);
  builder.AddRootId(pool[0]);
  NodeId spine = 0;
  for (int i = 0; i < teeth; ++i) {
    builder.AddChildId(spine, pool[1 % pool.size()]);
    spine = builder.AddChildId(
        spine, pool[static_cast<size_t>(i + 2) % pool.size()]);
  }
  return std::move(builder).Build();
}

TEST(BoundedTedTest, ExactWithinThresholdOnRandomPairs) {
  auto labels = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(labels, 4);
  Rng rng(kSeed);
  for (int i = 0; i < 120; ++i) {
    const Tree t1 =
        RandomTree(1 + static_cast<int>(rng.UniformIndex(20)), pool, labels,
                   rng);
    const Tree t2 =
        RandomTree(1 + static_cast<int>(rng.UniformIndex(20)), pool, labels,
                   rng);
    const int exact = TreeEditDistance(t1, t2);
    for (const int tau : {exact, exact + 1, exact + 3}) {
      EXPECT_EQ(BoundedTreeEditDistance(t1, t2, tau), exact) << "tau=" << tau;
    }
    for (const int tau : {0, exact - 1}) {
      if (tau < 0) continue;
      EXPECT_EQ(BoundedTreeEditDistance(t1, t2, tau),
                tau < exact ? tau + 1 : exact)
          << "tau=" << tau;
    }
  }
}

TEST(BoundedTedTest, ThresholdEdgeCases) {
  auto labels = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(labels, 3);
  const Tree a = Spine(6, pool, labels);
  const Tree b = Star(6, pool, labels);
  const int exact = TreeEditDistance(a, b);
  // tau = 0 answers the equality question.
  EXPECT_EQ(BoundedTreeEditDistance(a, a, 0), 0);
  EXPECT_EQ(BoundedTreeEditDistance(a, b, 0), exact == 0 ? 0 : 1);
  // Negative thresholds: everything is farther, reported as 0 (> tau).
  EXPECT_EQ(BoundedTreeEditDistance(a, b, -1), 0);
  EXPECT_EQ(BoundedTreeEditDistance(a, b, std::numeric_limits<int>::min()),
            0);
  // Unbounded-equivalent thresholds delegate and stay exact (INT_MAX must
  // not overflow the cap arithmetic).
  EXPECT_EQ(BoundedTreeEditDistance(a, b, a.size() + b.size()), exact);
  EXPECT_EQ(BoundedTreeEditDistance(a, b, std::numeric_limits<int>::max()),
            exact);
  // Single-node trees.
  const Tree one = Star(1, pool, labels);
  EXPECT_EQ(BoundedTreeEditDistance(one, one, 0), 0);
  EXPECT_EQ(BoundedTreeEditDistance(one, a, 2), 3);  // distance 5 > 2
}

TEST(BoundedTedTest, SizeDifferenceRejectsBeforeAnyDpWork) {
  auto labels = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(labels, 2);
  const Tree big = Spine(40, pool, labels);
  const Tree small = Spine(3, pool, labels);
  // |40 - 3| = 37 > 5, so the quick reject answers without touching the DP.
  EXPECT_EQ(BoundedTreeEditDistance(big, small, 5), 6);
  EXPECT_EQ(BoundedTreeEditDistance(small, big, 5), 6);
}

TEST(BoundedTedTest, MirrorViewStructure) {
  auto labels = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(labels, 3);
  const Tree comb = LeftComb(8, pool, labels);  // 17 nodes
  const TedTree view = TedTree::FromTree(comb);
  ASSERT_NE(view.mirror, nullptr);
  // The mirror is a view of the same tree: same size, no second level.
  EXPECT_EQ(view.mirror->size(), view.size());
  EXPECT_EQ(view.mirror->mirror, nullptr);
  EXPECT_GT(view.keyroot_weight, 0);
  EXPECT_GT(view.mirror->keyroot_weight, 0);
  // Every spine subtree is a keyroot in the leftmost decomposition (the
  // tooth precedes the spine child), so the original weight is quadratic
  // in the teeth while the mirror's is linear: the strategy choice must
  // see a strictly cheaper mirror here.
  EXPECT_GT(view.keyroot_weight, view.mirror->keyroot_weight);

  // Random trees: both orientations decompose the whole tree, so the
  // keyroot counts match and the weights are at least the tree size.
  Rng rng(kSeed + 1);
  for (int i = 0; i < 30; ++i) {
    const Tree t =
        RandomTree(1 + static_cast<int>(rng.UniformIndex(24)), pool, labels,
                   rng);
    const TedTree v = TedTree::FromTree(t);
    ASSERT_NE(v.mirror, nullptr);
    EXPECT_EQ(v.mirror->size(), v.size());
    EXPECT_EQ(v.keyroots.size(), v.mirror->keyroots.size());
    EXPECT_GE(v.keyroot_weight, v.size());
    EXPECT_GE(v.mirror->keyroot_weight, v.size());
  }
}

TEST(BoundedTedTest, MirrorStrategyStaysExact) {
  // Pairs of left combs force the strategy choice onto the mirrors; the
  // answers must stay exactly the Zhang–Shasha distances.
  auto labels = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(labels, 4);
  Rng rng(kSeed + 2);
  for (int teeth1 = 2; teeth1 <= 8; ++teeth1) {
    for (int teeth2 = 2; teeth2 <= 8; ++teeth2) {
      const Tree t1 = LeftComb(teeth1, pool, labels);
      const Tree t2 = LeftComb(teeth2, pool, labels);
      const int exact = TreeEditDistance(t1, t2);
      for (const int tau : {exact - 1, exact, exact + 2}) {
        if (tau < 0) continue;
        EXPECT_EQ(BoundedTreeEditDistance(t1, t2, tau),
                  tau < exact ? tau + 1 : exact)
            << "teeth=" << teeth1 << "," << teeth2 << " tau=" << tau;
      }
      // Comb versus a random tree exercises mixed orientations.
      const Tree r =
          RandomTree(1 + static_cast<int>(rng.UniformIndex(14)), pool,
                     labels, rng);
      const int exact_r = TreeEditDistance(t1, r);
      EXPECT_EQ(BoundedTreeEditDistance(t1, r, exact_r), exact_r);
    }
  }
}

TEST(BoundedTedTest, WeightedAgreesWithUnboundedUnderUnitCosts) {
  auto labels = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(labels, 3);
  Rng rng(kSeed + 3);
  const CostModel& unit = UnitCostModel::Get();
  for (int i = 0; i < 40; ++i) {
    const TedTree v1 = TedTree::FromTree(
        RandomTree(1 + static_cast<int>(rng.UniformIndex(16)), pool, labels,
                   rng));
    const TedTree v2 = TedTree::FromTree(
        RandomTree(1 + static_cast<int>(rng.UniformIndex(16)), pool, labels,
                   rng));
    const double exact = TreeEditDistanceWeighted(v1, v2, unit);
    EXPECT_EQ(BoundedTreeEditDistanceWeighted(v1, v2, exact, unit), exact);
    // Unit weighted distance equals the integer distance.
    EXPECT_EQ(exact, static_cast<double>(TreeEditDistance(v1, v2)));
    if (exact > 0.0) {
      EXPECT_GT(BoundedTreeEditDistanceWeighted(v1, v2, exact - 0.5, unit),
                exact - 0.5);
    }
  }
}

TEST(BoundedTedTest, BandPruningEngagesOnLargeProblems) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  auto labels = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(labels, 2);
  const Tree t1 = Spine(60, pool, labels);
  const Tree t2 = Spine(58, pool, labels);
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  const int d = BoundedTreeEditDistance(t1, t2, 4);
  const MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DiffSince(before);
  EXPECT_EQ(d, TreeEditDistance(t1, t2));  // true distance is 2 <= 4
  EXPECT_EQ(delta.counter("ted.bounded_calls"), 1);
  // A tau=4 band over a 60x58 single-keyroot-pair matrix computes a thin
  // diagonal; nearly everything else is pruned.
  EXPECT_GT(delta.counter("ted.bounded_cells_band_pruned"),
            delta.counter("ted.bounded_cells_computed"));
}

TEST(BoundedTedTest, KeyrootEarlyExitFiresOnDisjointStars) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  // Two stars over disjoint label pools at a small threshold: after a few
  // rows every in-band cell is saturated and no later row can jump back
  // before the saturated streak, so the root keyroot pair must abandon.
  // This is the regression test for the exit being silently dead (a
  // too-conservative jump analysis makes the condition unsatisfiable).
  auto labels = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(labels, 4);
  const std::vector<LabelId> pool_a = {pool[0], pool[1]};
  const std::vector<LabelId> pool_b = {pool[2], pool[3]};
  const Tree t1 = Star(20, pool_a, labels);
  const Tree t2 = Star(20, pool_b, labels);
  const int exact = TreeEditDistance(t1, t2);
  ASSERT_GT(exact, 3);
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(BoundedTreeEditDistance(t1, t2, 2), 3);
  const MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DiffSince(before);
  EXPECT_GT(delta.counter("ted.bounded_keyroot_early_exits"), 0);
}

TEST(BoundedTedTest, EarlyExitNeverChangesAnswers) {
  // Adversarial sweep for the exit's soundness condition: disjoint-label
  // and shared-label shape pairs at every threshold around the distance.
  auto labels = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(labels, 6);
  const std::vector<LabelId> half1 = {pool[0], pool[1], pool[2]};
  const std::vector<LabelId> half2 = {pool[3], pool[4], pool[5]};
  std::vector<Tree> shapes;
  for (const auto* p : {&half1, &half2}) {
    shapes.push_back(Spine(13, *p, labels));
    shapes.push_back(Star(13, *p, labels));
    shapes.push_back(LeftComb(6, *p, labels));
  }
  for (const Tree& t1 : shapes) {
    for (const Tree& t2 : shapes) {
      const int exact = TreeEditDistance(t1, t2);
      const int tau_max = t1.size() + t2.size();
      for (int tau = 0; tau <= tau_max; ++tau) {
        const int expected = tau < exact ? tau + 1 : exact;
        ASSERT_EQ(BoundedTreeEditDistance(t1, t2, tau), expected)
            << "tau=" << tau << " EDist=" << exact;
      }
    }
  }
}

}  // namespace
}  // namespace treesim
