#include "xml/xml_parser.h"

#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"
#include "tree/bracket.h"

namespace treesim {
namespace {

Tree ParseOk(const std::string& xml, const XmlParseOptions& options = {}) {
  auto dict = std::make_shared<LabelDictionary>();
  StatusOr<Tree> t = ParseXml(xml, dict, options);
  EXPECT_TRUE(t.ok()) << t.status() << " for: " << xml;
  return std::move(t).value();
}

XmlParseOptions StructureOnly() {
  XmlParseOptions o;
  o.text_mode = XmlParseOptions::TextMode::kIgnore;
  return o;
}

TEST(XmlParserTest, SingleElement) {
  Tree t = ParseOk("<a/>");
  EXPECT_EQ(ToBracket(t), "a");
}

TEST(XmlParserTest, NestedElements) {
  Tree t = ParseOk("<a><b><c/><d/></b><e/></a>", StructureOnly());
  EXPECT_EQ(ToBracket(t), "a{b{c d} e}");
}

TEST(XmlParserTest, TextBecomesLeaf) {
  Tree t = ParseOk("<author>Jane Doe</author>");
  EXPECT_EQ(ToBracket(t), "author{'Jane Doe'}");
}

TEST(XmlParserTest, TextIgnoredMode) {
  Tree t = ParseOk("<author>Jane Doe</author>", StructureOnly());
  EXPECT_EQ(ToBracket(t), "author");
}

TEST(XmlParserTest, MixedContentKeepsOrder) {
  Tree t = ParseOk("<p>one<b/>two</p>");
  EXPECT_EQ(ToBracket(t), "p{one b two}");
}

TEST(XmlParserTest, WhitespaceOnlyTextIgnored) {
  Tree t = ParseOk("<a>\n  <b/>\n</a>");
  EXPECT_EQ(ToBracket(t), "a{b}");
}

TEST(XmlParserTest, AttributesIgnoredByDefault) {
  Tree t = ParseOk("<a x=\"1\" y='2'><b z=\"3\"/></a>", StructureOnly());
  EXPECT_EQ(ToBracket(t), "a{b}");
}

TEST(XmlParserTest, AttributesAsChildren) {
  XmlParseOptions o;
  o.include_attributes = true;
  Tree t = ParseOk("<a x=\"1\"><b y='2'/></a>", o);
  EXPECT_EQ(ToBracket(t), "a{@x{1} b{@y{2}}}");
}

TEST(XmlParserTest, DeclarationCommentDoctype) {
  Tree t = ParseOk(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE dblp SYSTEM \"dblp.dtd\">\n"
      "<!-- a comment -->\n"
      "<a><!-- inner --><b/></a>",
      StructureOnly());
  EXPECT_EQ(ToBracket(t), "a{b}");
}

TEST(XmlParserTest, DoctypeWithInternalSubset) {
  Tree t = ParseOk("<!DOCTYPE a [ <!ELEMENT a (b)> ]><a><b/></a>",
                   StructureOnly());
  EXPECT_EQ(ToBracket(t), "a{b}");
}

TEST(XmlParserTest, CdataIsText) {
  Tree t = ParseOk("<a><![CDATA[x < y & z]]></a>");
  EXPECT_EQ(ToBracket(t), "a{'x < y & z'}");
}

TEST(XmlParserTest, EntityDecoding) {
  Tree t = ParseOk("<a>&lt;tag&gt; &amp; &quot;x&quot; &apos;y&apos;</a>");
  EXPECT_EQ(ToBracket(t), "a{'<tag> & \"x\" \\'y\\''}");
}

TEST(XmlParserTest, NumericCharacterReferences) {
  Tree t = ParseOk("<a>&#65;&#x42;</a>");
  EXPECT_EQ(ToBracket(t), "a{AB}");
}

TEST(XmlParserTest, LongTextTruncated) {
  XmlParseOptions o;
  o.max_text_label_length = 4;
  Tree t = ParseOk("<a>abcdefgh</a>", o);
  EXPECT_EQ(ToBracket(t), "a{abcd}");
}

TEST(XmlParserTest, DblpLikeRecord) {
  Tree t = ParseOk(
      "<article key=\"x\">"
      "<author>A. U. Thor</author><author>B. Writer</author>"
      "<title>On Trees</title><year>2004</year>"
      "<journal>TODS</journal></article>");
  EXPECT_EQ(ToBracket(t),
            "article{author{'A. U. Thor'} author{'B. Writer'} "
            "title{'On Trees'} year{2004} journal{TODS}}");
}

TEST(XmlParserTest, ErrorMismatchedTags) {
  auto dict = std::make_shared<LabelDictionary>();
  EXPECT_FALSE(ParseXml("<a><b></a></b>", dict).ok());
}

TEST(XmlParserTest, ErrorUnclosedElement) {
  auto dict = std::make_shared<LabelDictionary>();
  EXPECT_FALSE(ParseXml("<a><b/>", dict).ok());
}

TEST(XmlParserTest, ErrorMultipleRoots) {
  auto dict = std::make_shared<LabelDictionary>();
  EXPECT_FALSE(ParseXml("<a/><b/>", dict).ok());
}

TEST(XmlParserTest, ErrorNoRoot) {
  auto dict = std::make_shared<LabelDictionary>();
  EXPECT_FALSE(ParseXml("", dict).ok());
  EXPECT_FALSE(ParseXml("<!-- only a comment -->", dict).ok());
}

TEST(XmlParserTest, ErrorTextOutsideRoot) {
  auto dict = std::make_shared<LabelDictionary>();
  EXPECT_FALSE(ParseXml("hello<a/>", dict).ok());
  EXPECT_FALSE(ParseXml("<a/>world", dict).ok());
}

TEST(XmlParserTest, ErrorBadEntity) {
  auto dict = std::make_shared<LabelDictionary>();
  EXPECT_FALSE(ParseXml("<a>&unknown;</a>", dict).ok());
  EXPECT_FALSE(ParseXml("<a>&#xZZ;</a>", dict).ok());
}

TEST(XmlParserTest, ErrorMalformedAttribute) {
  auto dict = std::make_shared<LabelDictionary>();
  EXPECT_FALSE(ParseXml("<a x=1/>", dict).ok());
  EXPECT_FALSE(ParseXml("<a x></a>", dict).ok());
}

TEST(XmlWriterTest, RendersIndentedElements) {
  Tree t = ParseOk("<a><b><c/></b><d/></a>", StructureOnly());
  EXPECT_EQ(ToXml(t),
            "<a>\n"
            "  <b>\n"
            "    <c/>\n"
            "  </b>\n"
            "  <d/>\n"
            "</a>\n");
}

TEST(XmlWriterTest, EscapesSpecialCharacters) {
  auto dict = std::make_shared<LabelDictionary>();
  TreeBuilder b(dict);
  b.AddRoot("a<b>&c");
  Tree t = std::move(b).Build();
  EXPECT_EQ(ToXml(t), "<a&lt;b&gt;&amp;c/>\n");
}

TEST(XmlRoundTripTest, StructureSurvives) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = testing::MakeLabelPool(dict, 4);
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = testing::RandomTree(rng.UniformInt(1, 50), pool, dict, rng);
    StatusOr<Tree> back = ParseXml(ToXml(t), dict, StructureOnly());
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_TRUE(t.StructurallyEquals(*back));
  }
}

}  // namespace
}  // namespace treesim
