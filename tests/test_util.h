#ifndef TREESIM_TESTS_TEST_UTIL_H_
#define TREESIM_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tree/bracket.h"
#include "tree/tree.h"
#include "util/random.h"

namespace treesim {
namespace testing {

/// Parses bracket notation, failing the test on parse errors.
inline Tree MakeTree(const std::string& text,
                     const std::shared_ptr<LabelDictionary>& labels) {
  StatusOr<Tree> t = ParseBracket(text, labels);
  EXPECT_TRUE(t.ok()) << t.status() << " for \"" << text << "\"";
  return std::move(t).value();
}

/// Fresh dictionary + tree in one call (for tests that need only one tree).
inline Tree MakeTree(const std::string& text) {
  return MakeTree(text, std::make_shared<LabelDictionary>());
}

/// A random tree with `size` nodes and labels drawn from `label_pool`
/// (uniform random parent choice => unbiased over many shapes, including
/// chains and stars).
inline Tree RandomTree(int size, const std::vector<LabelId>& label_pool,
                       const std::shared_ptr<LabelDictionary>& labels,
                       Rng& rng) {
  TreeBuilder builder(labels);
  builder.AddRootId(label_pool[rng.UniformIndex(label_pool.size())]);
  for (int i = 1; i < size; ++i) {
    const NodeId parent =
        static_cast<NodeId>(rng.UniformIndex(static_cast<size_t>(i)));
    builder.AddChildId(parent,
                       label_pool[rng.UniformIndex(label_pool.size())]);
  }
  return std::move(builder).Build();
}

/// Interns "l0".."l<n-1>" and returns their ids.
inline std::vector<LabelId> MakeLabelPool(
    const std::shared_ptr<LabelDictionary>& labels, int n) {
  std::vector<LabelId> pool;
  pool.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    pool.push_back(labels->Intern("l" + std::to_string(i)));
  }
  return pool;
}

}  // namespace testing
}  // namespace treesim

#endif  // TREESIM_TESTS_TEST_UTIL_H_
