#ifndef TREESIM_TESTS_JSON_VALIDATOR_H_
#define TREESIM_TESTS_JSON_VALIDATOR_H_

// Minimal recursive-descent JSON parser for schema-validation tests.
// The library emits JSON by string-building (util/structured_log.h,
// bench/bench_report.h, MetricsSnapshot::ToJson); these tests must check
// that output with an INDEPENDENT implementation, so this parser shares no
// code with the emitters. Test-only: parses into a DOM of JsonValue nodes,
// keeps object key order, rejects trailing garbage. Not a library API.

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace treesim {
namespace test {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  // Key order preserved (the emitters append in call order).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_bool() const { return kind == Kind::kBool; }

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  bool Has(const std::string& key) const { return Find(key) != nullptr; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole input as one value; sets ok=false on any syntax
  /// error or trailing non-whitespace.
  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t n = std::string(literal).size();
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return ConsumeLiteral("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return ConsumeLiteral("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return ConsumeLiteral("null");
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      SkipSpace();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          const std::string hex = text_.substr(pos_, 4);
          for (const char h : hex) {
            if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
          }
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          pos_ += 4;
          // Tests only emit ASCII escapes; encode BMP as UTF-8 anyway.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_]))) digits = true;
      ++pos_;
    }
    if (!digits) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = std::strtod(text_.substr(start, pos_ - start).c_str(),
                                    nullptr);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline bool ParseJson(const std::string& text, JsonValue* out) {
  return JsonParser(text).Parse(out);
}

}  // namespace test
}  // namespace treesim

#endif  // TREESIM_TESTS_JSON_VALIDATOR_H_
