#include <string>

#include "gtest/gtest.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace treesim {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  TREESIM_CHECK(1 + 1 == 2);
  TREESIM_CHECK_EQ(3, 3);
  TREESIM_CHECK_NE(3, 4);
  TREESIM_CHECK_LT(3, 4);
  TREESIM_CHECK_LE(3, 3);
  TREESIM_CHECK_GT(4, 3);
  TREESIM_CHECK_GE(4, 4) << "never evaluated";
}

TEST(CheckDeathTest, FailingCheckAbortsWithMessage) {
  EXPECT_DEATH(TREESIM_CHECK(false) << "extra context " << 42,
               "CHECK failed.*false.*extra context 42");
  EXPECT_DEATH(TREESIM_CHECK_EQ(1, 2), "CHECK failed");
}

TEST(CheckTest, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto count = [&]() {
    ++calls;
    return true;
  };
  TREESIM_CHECK(count());
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, StreamedArgumentsNotEvaluatedOnSuccess) {
  int calls = 0;
  auto expensive = [&]() {
    ++calls;
    return std::string("expensive");
  };
  TREESIM_CHECK(true) << expensive();
  EXPECT_EQ(calls, 0);  // the message chain is short-circuited
}

TEST(DcheckTest, ReleaseModeDoesNotEvaluate) {
  int calls = 0;
  auto count = [&]() {
    ++calls;
    return true;
  };
  TREESIM_DCHECK(count());
#ifdef NDEBUG
  EXPECT_EQ(calls, 0);
#else
  EXPECT_EQ(calls, 1);
#endif
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  // Burn a little CPU deterministically.
  volatile int64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  const double s = sw.ElapsedSeconds();
  const int64_t us = sw.ElapsedMicros();
  EXPECT_GT(s, 0.0);
  EXPECT_GT(us, 0);
  EXPECT_LT(s, 10.0);  // sanity: the loop is far below 10s
}

TEST(StopwatchTest, MonotoneNonDecreasing) {
  Stopwatch sw;
  double last = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = sw.ElapsedSeconds();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(StopwatchTest, ResetRestartsFromZero) {
  Stopwatch sw;
  volatile int64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  const double before = sw.ElapsedSeconds();
  sw.Reset();
  EXPECT_LT(sw.ElapsedSeconds(), before);
}

}  // namespace
}  // namespace treesim
