// Tests for crash-time triage (util/triage.h). Two levels:
//  - the direct WriteTriageDump round-trip (no crash involved), and
//  - the real thing: a fork()ed child installs the handler, seeds the
//    flight recorder, and fails a TREESIM_CHECK; the parent asserts the
//    child died of SIGABRT and left a complete, content-bearing dump.
#include "util/triage.h"

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "util/flight_recorder.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/query_context.h"

namespace treesim {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/treesim_triage_test.XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? "/tmp" : dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// First triage dump in `dir` ("" when none).
std::string FindDump(const std::string& dir) {
  // The dump name is treesim_triage.<unixsec>.<pid>.txt; the directory is
  // private to one test, so a prefix scan is enough.
  std::string found;
  if (DIR* d = opendir(dir.c_str())) {
    while (struct dirent* entry = readdir(d)) {
      if (std::strncmp(entry->d_name, "treesim_triage.", 15) == 0) {
        found = dir + "/" + entry->d_name;
        break;
      }
    }
    closedir(d);
  }
  return found;
}

void SeedFlightRecorder() {
  for (int i = 0; i < 3; ++i) {
    const ScopedQueryContext qctx("triage_test");
    FlightRecord rec;
    rec.query_id = qctx.query_id();
    rec.op = "triage_test";
    rec.param = i;
    rec.total_micros = 5 * (i + 1);
    FlightRecorder::Global().Record(rec);
  }
}

TEST(TriageTest, DirectDumpRoundTrip) {
  const std::string dir = MakeTempDir();
  SetTriageDir(dir.c_str());
  SeedFlightRecorder();
  ASSERT_TRUE(WriteTriageDump("unit_test"));
  const std::string path = LastTriagePath();
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.compare(0, dir.size(), dir), 0)
      << "dump should land in the configured dir, got " << path;

  const std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("TREESIM_TRIAGE 1\n"), std::string::npos);
  EXPECT_NE(dump.find("reason unit_test\n"), std::string::npos);
  EXPECT_NE(dump.find("build_sha "), std::string::npos);
  EXPECT_NE(dump.find("build_type "), std::string::npos);
  EXPECT_NE(dump.find("SECTION metrics\n"), std::string::npos);
  EXPECT_NE(dump.find("SECTION flight_recorder\n"), std::string::npos);
  EXPECT_NE(dump.find("SECTION trace_tail\n"), std::string::npos);
  EXPECT_NE(dump.find("END\n"), std::string::npos);
  if (kMetricsEnabled) {
    EXPECT_NE(dump.find("metrics_enabled 1\n"), std::string::npos);
    EXPECT_NE(dump.find("record query_id="), std::string::npos);
    EXPECT_NE(dump.find("op=triage_test"), std::string::npos);
  } else {
    EXPECT_NE(dump.find("metrics_enabled 0\n"), std::string::npos);
  }
}

TEST(TriageTest, CrashingChildLeavesParseableDump) {
  const std::string dir = MakeTempDir();
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: arm the handler, give the dump something to say, then fail a
    // check for real. Stderr is silenced so the expected CHECK diagnostic
    // does not pollute the test log.
    if (FILE* sink = std::fopen("/dev/null", "w")) {
      dup2(fileno(sink), STDERR_FILENO);
    }
    InstallCrashHandler();
    SetTriageDir(dir.c_str());
    SeedFlightRecorder();
    TREESIM_CHECK(1 < 0) << "triage_test intentional failure";
    _exit(0);  // unreachable; a plain exit would report a bogus pass
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child should die of a signal, status=" << status;
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const std::string path = FindDump(dir);
  ASSERT_FALSE(path.empty()) << "no triage dump in " << dir;
  const std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("TREESIM_TRIAGE 1\n"), std::string::npos);
  EXPECT_NE(dump.find("reason SIGABRT\n"), std::string::npos);
  EXPECT_NE(dump.find("fatal_message CHECK failed"), std::string::npos);
  EXPECT_NE(dump.find("triage_test intentional failure"), std::string::npos);
  EXPECT_NE(dump.find("END\n"), std::string::npos);
  if (kMetricsEnabled) {
    EXPECT_NE(dump.find("record query_id="), std::string::npos)
        << "dump should carry the child's flight records";
  }
}

}  // namespace
}  // namespace treesim
