// Unit tests for the span tracer (util/trace.h): enable/disable gating,
// nesting depths and containment, ring-buffer wraparound accounting, and
// the chrome://tracing export. The tracer is process-global; every test
// starts from Clear() and leaves the tracer disabled.
#include "util/trace.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace treesim {
namespace {

/// Fresh, enabled tracer (or fresh disabled one for the gating tests).
void ResetTracer(bool enable) {
  Tracer::Global().Disable();
  Tracer::Global().Clear();
  if (enable) Tracer::Global().Enable();
}

TEST(TraceTest, DisabledTracerRecordsNothing) {
  ResetTracer(/*enable=*/false);
  { TREESIM_TRACE_SPAN("test.trace.disabled"); }
  EXPECT_TRUE(Tracer::Global().Collect().empty());
  EXPECT_EQ(Tracer::Global().dropped_events(), 0);
}

TEST(TraceTest, EnableDisableToggles) {
  ResetTracer(/*enable=*/true);
  EXPECT_TRUE(Tracer::Global().enabled() || !kMetricsEnabled);
  Tracer::Global().Disable();
  EXPECT_FALSE(Tracer::Global().enabled());
}

TEST(TraceTest, NestedSpansRecordDepthsAndContainment) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  ResetTracer(/*enable=*/true);
  {
    TREESIM_TRACE_SPAN("test.trace.outer");
    {
      TREESIM_TRACE_SPAN("test.trace.middle");
      { TREESIM_TRACE_SPAN("test.trace.inner"); }
    }
  }
  Tracer::Global().Disable();
  const std::vector<TraceEvent> events = Tracer::Global().Collect();
  ASSERT_EQ(events.size(), 3u);
  // Collect() sorts by start time: outer opened first.
  EXPECT_STREQ(events[0].name, "test.trace.outer");
  EXPECT_STREQ(events[1].name, "test.trace.middle");
  EXPECT_STREQ(events[2].name, "test.trace.inner");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 2);
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.start_ns, 0);
    EXPECT_GE(e.duration_ns, 0);
  }
  // Each child starts no earlier and ends no later than its parent.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);
    EXPECT_LE(events[i].start_ns + events[i].duration_ns,
              events[i - 1].start_ns + events[i - 1].duration_ns);
  }
}

TEST(TraceTest, SequentialSpansAreOrderedByStart) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  ResetTracer(/*enable=*/true);
  for (int i = 0; i < 5; ++i) {
    TREESIM_TRACE_SPAN("test.trace.seq");
  }
  Tracer::Global().Disable();
  const std::vector<TraceEvent> events = Tracer::Global().Collect();
  ASSERT_EQ(events.size(), 5u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);
    EXPECT_EQ(events[i].depth, 0);
  }
}

TEST(TraceTest, RingWraparoundKeepsNewestAndCountsDropped) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  ResetTracer(/*enable=*/true);
  constexpr int kExtra = 100;
  for (int i = 0; i < Tracer::kRingCapacity + kExtra; ++i) {
    TREESIM_TRACE_SPAN("test.trace.wrap");
  }
  Tracer::Global().Disable();
  const std::vector<TraceEvent> events = Tracer::Global().Collect();
  EXPECT_EQ(static_cast<int>(events.size()), Tracer::kRingCapacity);
  EXPECT_EQ(Tracer::Global().dropped_events(), kExtra);
  // The survivors are the newest spans: strictly within the recorded window
  // and still start-ordered.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);
  }
}

TEST(TraceTest, ThreadsGetDistinctIndices) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  ResetTracer(/*enable=*/true);
  {
    ThreadPool pool(2);
    pool.ParallelFor(8, [](int64_t) {
      TREESIM_TRACE_SPAN("test.trace.pooled");
    });
  }
  Tracer::Global().Disable();
  int max_thread_index = 0;
  int pooled = 0;
  for (const TraceEvent& e : Tracer::Global().Collect()) {
    max_thread_index = std::max(max_thread_index, e.thread_index);
    if (std::string(e.name) == "test.trace.pooled") ++pooled;
  }
  // Workers record threadpool.task spans too; only count ours. All eight
  // iterations ran, and at least one worker beyond thread 0 recorded.
  EXPECT_EQ(pooled, 8);
  EXPECT_GE(max_thread_index, 1);
}

TEST(TraceTest, ClearDropsEventsAndZeroesDropCounter) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  ResetTracer(/*enable=*/true);
  for (int i = 0; i < Tracer::kRingCapacity + 10; ++i) {
    TREESIM_TRACE_SPAN("test.trace.clear");
  }
  Tracer::Global().Disable();
  ASSERT_FALSE(Tracer::Global().Collect().empty());
  ASSERT_GT(Tracer::Global().dropped_events(), 0);
  Tracer::Global().Clear();
  EXPECT_TRUE(Tracer::Global().Collect().empty());
  EXPECT_EQ(Tracer::Global().dropped_events(), 0);
}

TEST(TraceTest, ExportChromeTracingIsWellFormed) {
  ResetTracer(/*enable=*/true);
  {
    TREESIM_TRACE_SPAN("test.trace.export_outer");
    { TREESIM_TRACE_SPAN("test.trace.export_inner"); }
  }
  Tracer::Global().Disable();
  const std::string json = Tracer::Global().ExportChromeTracing();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  int braces = 0;
  int brackets = 0;
  for (char ch : json) {
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  if (kMetricsEnabled) {
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("test.trace.export_outer"), std::string::npos);
    EXPECT_NE(json.find("test.trace.export_inner"), std::string::npos);
  } else {
    EXPECT_EQ(json.find("\"ph\""), std::string::npos);
  }
  Tracer::Global().Clear();
}

TEST(TraceTest, OffBuildTracerIsSilent) {
  if (kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=ON";
  Tracer::Global().Enable();
  { TREESIM_TRACE_SPAN("test.trace.off"); }
  Tracer::Global().Disable();
  EXPECT_TRUE(Tracer::Global().Collect().empty());
  EXPECT_EQ(Tracer::Global().dropped_events(), 0);
}

}  // namespace
}  // namespace treesim
