#include "tree/label_dictionary.h"

#include "gtest/gtest.h"

namespace treesim {
namespace {

TEST(LabelDictionaryTest, EpsilonIsReserved) {
  LabelDictionary dict;
  EXPECT_EQ(dict.size(), 0u);
  EXPECT_EQ(dict.id_bound(), 1u);
  EXPECT_EQ(dict.Name(kEpsilonLabel), "\xCE\xB5");  // "ε"
}

TEST(LabelDictionaryTest, InternAssignsDenseIdsFromOne) {
  LabelDictionary dict;
  EXPECT_EQ(dict.Intern("a"), 1u);
  EXPECT_EQ(dict.Intern("b"), 2u);
  EXPECT_EQ(dict.Intern("c"), 3u);
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.id_bound(), 4u);
}

TEST(LabelDictionaryTest, InternIsIdempotent) {
  LabelDictionary dict;
  const LabelId a = dict.Intern("a");
  dict.Intern("b");
  EXPECT_EQ(dict.Intern("a"), a);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(LabelDictionaryTest, NameRoundTrips) {
  LabelDictionary dict;
  const LabelId id = dict.Intern("some-label");
  EXPECT_EQ(dict.Name(id), "some-label");
}

TEST(LabelDictionaryTest, LookupFindsOnlyInterned) {
  LabelDictionary dict;
  dict.Intern("x");
  ASSERT_TRUE(dict.Lookup("x").has_value());
  EXPECT_EQ(*dict.Lookup("x"), 1u);
  EXPECT_FALSE(dict.Lookup("y").has_value());
}

TEST(LabelDictionaryTest, HandlesManyLabels) {
  LabelDictionary dict;
  for (int i = 0; i < 10000; ++i) {
    dict.Intern("label" + std::to_string(i));
  }
  EXPECT_EQ(dict.size(), 10000u);
  EXPECT_EQ(dict.Name(*dict.Lookup("label1234")), "label1234");
}

TEST(LabelDictionaryTest, UnicodeAndSpecialCharacters) {
  LabelDictionary dict;
  const LabelId id = dict.Intern("héllo wörld <>&");
  EXPECT_EQ(dict.Name(id), "héllo wörld <>&");
}

TEST(LabelDictionaryDeathTest, EmptyLabelRejected) {
  LabelDictionary dict;
  EXPECT_DEATH(dict.Intern(""), "reserved");
}

TEST(LabelDictionaryDeathTest, UnknownIdRejected) {
  LabelDictionary dict;
  EXPECT_DEATH(dict.Name(99), "unknown LabelId");
}

}  // namespace
}  // namespace treesim
