// Pins the determinism contract of every pool-aware layer: with any worker
// count, results are identical to the sequential path — parallelism may
// only change wall-clock time (and, for the k-NN sweep, the number of
// verifications, which is why these tests compare results, not stats
// counters, for Knn).
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "core/inverted_file.h"
#include "filters/bibranch_filter.h"
#include "search/pairwise.h"
#include "search/similarity_join.h"
#include "search/similarity_search.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::RandomTree;

constexpr int kWorkers = 8;

std::unique_ptr<TreeDatabase> SeededDb(int count, uint64_t seed,
                                       int max_size = 16) {
  auto dict = std::make_shared<LabelDictionary>();
  auto db = std::make_unique<TreeDatabase>(dict);
  const std::vector<LabelId> pool = MakeLabelPool(dict, 5);
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    db->Add(RandomTree(rng.UniformInt(1, max_size), pool, dict, rng));
  }
  return db;
}

TEST(ParallelDeterminismTest, PairwiseMatrixIdentical) {
  auto db = SeededDb(40, 2025);
  const PairwiseDistances serial = ComputePairwiseDistances(*db, nullptr);
  ThreadPool pool(kWorkers);
  const PairwiseDistances parallel = ComputePairwiseDistances(*db, &pool);
  ASSERT_EQ(parallel.size(), serial.size());
  for (int i = 0; i < serial.size(); ++i) {
    for (int j = 0; j < serial.size(); ++j) {
      ASSERT_EQ(parallel.At(i, j), serial.At(i, j));
    }
  }
}

TEST(ParallelDeterminismTest, InvertedFileBuildIdentical) {
  auto db = SeededDb(60, 2027);
  InvertedFileIndex serial(2);
  for (const Tree& t : db->trees()) serial.Add(t);

  ThreadPool pool(kWorkers);
  InvertedFileIndex parallel(2);
  parallel.AddAll(db->trees(), &pool);

  ASSERT_EQ(parallel.tree_count(), serial.tree_count());
  // Interning order is part of the contract: the same BranchKey must map to
  // the same BranchId, so the dictionaries agree id-by-id.
  ASSERT_EQ(parallel.branch_dict().size(), serial.branch_dict().size());
  for (size_t b = 0; b < serial.branch_dict().size(); ++b) {
    const BranchId branch = static_cast<BranchId>(b);
    const auto& sp = serial.postings(branch);
    const auto& pp = parallel.postings(branch);
    ASSERT_EQ(pp.size(), sp.size()) << "branch " << b;
    for (size_t p = 0; p < sp.size(); ++p) {
      EXPECT_EQ(pp[p].tree_id, sp[p].tree_id) << "branch " << b;
      EXPECT_EQ(pp[p].positions, sp[p].positions) << "branch " << b;
    }
  }
  EXPECT_TRUE(parallel.ValidateInvariants().ok());
}

TEST(ParallelDeterminismTest, FilterBuildWithPoolIdentical) {
  auto db = SeededDb(50, 2029);
  BiBranchFilter serial;
  serial.Build(db->trees());

  ThreadPool pool(kWorkers);
  BiBranchFilter::Options options;
  options.build_pool = &pool;
  BiBranchFilter parallel(options);
  parallel.Build(db->trees());

  ASSERT_EQ(parallel.profiles().size(), serial.profiles().size());
  for (size_t i = 0; i < serial.profiles().size(); ++i) {
    const BranchProfile& sp = serial.profiles()[i];
    const BranchProfile& pp = parallel.profiles()[i];
    EXPECT_EQ(pp.tree_size, sp.tree_size);
    ASSERT_EQ(pp.entries.size(), sp.entries.size()) << "tree " << i;
    for (size_t e = 0; e < sp.entries.size(); ++e) {
      EXPECT_EQ(pp.entries[e].branch, sp.entries[e].branch) << "tree " << i;
      EXPECT_EQ(pp.entries[e].occurrences, sp.entries[e].occurrences);
      EXPECT_EQ(pp.entries[e].posts_sorted, sp.entries[e].posts_sorted);
    }
  }
}

TEST(ParallelDeterminismTest, RangeQueryIdentical) {
  auto db = SeededDb(80, 2031);
  ThreadPool pool(kWorkers);
  for (const bool filtered : {false, true}) {
    SimilaritySearch seq(
        db.get(), filtered ? std::make_unique<BiBranchFilter>() : nullptr);
    SimilaritySearch par(
        db.get(), filtered ? std::make_unique<BiBranchFilter>() : nullptr);
    for (const int tau : {0, 2, 5}) {
      for (int qi = 0; qi < 5; ++qi) {
        const Tree& query = db->tree(qi * 7);
        const RangeResult s = seq.Range(query, tau, nullptr);
        const RangeResult p = par.Range(query, tau, &pool);
        EXPECT_EQ(p.matches, s.matches) << "tau=" << tau;
        // Range refines the same candidate set either way, so even the
        // counters must agree.
        EXPECT_EQ(p.stats.edit_distance_calls, s.stats.edit_distance_calls);
        EXPECT_EQ(p.stats.candidates, s.stats.candidates);
      }
    }
  }
}

TEST(ParallelDeterminismTest, KnnIdenticalNeighbors) {
  auto db = SeededDb(80, 2033);
  ThreadPool pool(kWorkers);
  for (const bool filtered : {false, true}) {
    SimilaritySearch seq(
        db.get(), filtered ? std::make_unique<BiBranchFilter>() : nullptr);
    SimilaritySearch par(
        db.get(), filtered ? std::make_unique<BiBranchFilter>() : nullptr);
    for (const int k : {1, 3, 10, 200 /* > |D| */}) {
      for (int qi = 0; qi < 5; ++qi) {
        const Tree& query = db->tree(qi * 11);
        const KnnResult s = seq.Knn(query, k, nullptr);
        const KnnResult p = par.Knn(query, k, &pool);
        // Neighbors are byte-identical; edit_distance_calls may differ (a
        // parallel block can verify past the sequential stopping point).
        EXPECT_EQ(p.neighbors, s.neighbors)
            << "k=" << k << " filtered=" << filtered;
      }
    }
  }
}

TEST(ParallelDeterminismTest, BatchKnnMatchesSequentialKnn) {
  auto db = SeededDb(60, 2035);
  ThreadPool pool(kWorkers);
  std::vector<Tree> queries;
  for (int qi = 0; qi < 8; ++qi) queries.push_back(db->tree(qi * 5));

  SimilaritySearch seq(db.get(), std::make_unique<BiBranchFilter>());
  SimilaritySearch par(db.get(), std::make_unique<BiBranchFilter>());
  const int k = 4;
  const BatchKnnResult batch = par.BatchKnn(queries, k, &pool);
  ASSERT_EQ(batch.per_query.size(), queries.size());
  int64_t results = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const KnnResult s = seq.Knn(queries[qi], k, nullptr);
    EXPECT_EQ(batch.per_query[qi].neighbors, s.neighbors) << "query " << qi;
    results += batch.per_query[qi].stats.results;
  }
  // The merged stats are the sum of the per-query stats.
  EXPECT_EQ(batch.combined.results, results);
  EXPECT_EQ(batch.combined.database_size,
            static_cast<int64_t>(queries.size()) * db->size());
}

TEST(ParallelDeterminismTest, JoinAndSelfJoinIdentical) {
  auto right = SeededDb(40, 2037);
  auto left = std::make_unique<TreeDatabase>(right->label_dict());
  {
    const std::vector<LabelId> pool_ids =
        MakeLabelPool(right->label_dict(), 5);
    Rng rng(2039);
    for (int i = 0; i < 25; ++i) {
      left->Add(RandomTree(rng.UniformInt(1, 16), pool_ids,
                           right->label_dict(), rng));
    }
  }
  ThreadPool pool(kWorkers);
  for (const bool filtered : {false, true}) {
    for (const int tau : {1, 3}) {
      SimilarityJoin seq(
          right.get(),
          filtered ? std::make_unique<BiBranchFilter>() : nullptr);
      SimilarityJoin par(
          right.get(),
          filtered ? std::make_unique<BiBranchFilter>() : nullptr);
      const JoinResult s = seq.Join(*left, tau, nullptr);
      const JoinResult p = par.Join(*left, tau, &pool);
      EXPECT_EQ(p.pairs, s.pairs) << "tau=" << tau;
      EXPECT_EQ(p.stats.candidates, s.stats.candidates);
      EXPECT_EQ(p.stats.edit_distance_calls, s.stats.edit_distance_calls);
      EXPECT_EQ(p.stats.database_size, s.stats.database_size);

      const JoinResult ss = seq.SelfJoin(tau, nullptr);
      const JoinResult ps = par.SelfJoin(tau, &pool);
      EXPECT_EQ(ps.pairs, ss.pairs) << "self tau=" << tau;
      EXPECT_EQ(ps.stats.edit_distance_calls, ss.stats.edit_distance_calls);
    }
  }
}

TEST(ParallelDeterminismTest, BoundedKnnDeterministicUnderTies) {
  // The bounded refine path snapshots the kth-best distance as its
  // threshold; a stale snapshot (heap improved after the read) may verify
  // with a looser bound, but candidates clamped at tau_b + 1 must still
  // lose every heap-insert tie-break exactly like their true distance
  // would. A tiny label pool over small trees makes most distances collide
  // at the kth value, so any tie mishandling flips a neighbor id. Repeats
  // vary the interleaving.
  auto dict = std::make_shared<LabelDictionary>();
  auto db = std::make_unique<TreeDatabase>(dict);
  const std::vector<LabelId> pool_ids = MakeLabelPool(dict, 2);
  Rng rng(2045);
  for (int i = 0; i < 120; ++i) {
    db->Add(RandomTree(rng.UniformInt(2, 6), pool_ids, dict, rng));
  }
  ThreadPool pool(kWorkers);
  for (const bool filtered : {false, true}) {
    SimilaritySearch seq(
        db.get(), filtered ? std::make_unique<BiBranchFilter>() : nullptr);
    SimilaritySearch par(
        db.get(), filtered ? std::make_unique<BiBranchFilter>() : nullptr);
    for (const int k : {1, 5, 40, 120 /* == |D| */}) {
      for (int qi = 0; qi < 4; ++qi) {
        const Tree& query = db->tree(qi * 17);
        const KnnResult s = seq.Knn(query, k, nullptr);
        for (int repeat = 0; repeat < 3; ++repeat) {
          const KnnResult p = par.Knn(query, k, &pool);
          ASSERT_EQ(p.neighbors, s.neighbors)
              << "k=" << k << " filtered=" << filtered
              << " repeat=" << repeat;
        }
      }
    }
  }
}

TEST(ParallelDeterminismTest, BoundedRangeAndJoinDeterministicUnderTies) {
  // Same tie-heavy corpus through the bounded Range and Join paths: every
  // emitted distance is exact (never the tau + 1 clamp), so results and
  // counters must match the sequential engine byte for byte.
  auto dict = std::make_shared<LabelDictionary>();
  auto db = std::make_unique<TreeDatabase>(dict);
  const std::vector<LabelId> pool_ids = MakeLabelPool(dict, 2);
  Rng rng(2047);
  for (int i = 0; i < 60; ++i) {
    db->Add(RandomTree(rng.UniformInt(2, 6), pool_ids, dict, rng));
  }
  ThreadPool pool(kWorkers);
  SimilaritySearch seq(db.get(), std::make_unique<BiBranchFilter>());
  SimilaritySearch par(db.get(), std::make_unique<BiBranchFilter>());
  for (const int tau : {0, 1, 3}) {
    for (int qi = 0; qi < 4; ++qi) {
      const Tree& query = db->tree(qi * 13);
      const RangeResult s = seq.Range(query, tau, nullptr);
      const RangeResult p = par.Range(query, tau, &pool);
      EXPECT_EQ(p.matches, s.matches) << "tau=" << tau;
      for (const auto& [id, d] : p.matches) EXPECT_LE(d, tau);
    }
    SimilarityJoin jseq(db.get(), std::make_unique<BiBranchFilter>());
    SimilarityJoin jpar(db.get(), std::make_unique<BiBranchFilter>());
    const JoinResult s = jseq.SelfJoin(tau, nullptr);
    const JoinResult p = jpar.SelfJoin(tau, &pool);
    EXPECT_EQ(p.pairs, s.pairs) << "tau=" << tau;
    EXPECT_EQ(p.stats.edit_distance_calls, s.stats.edit_distance_calls);
  }
}

TEST(ParallelDeterminismTest, TinyInputsTakeTheSequentialPath) {
  // ClampThreads collapses tiny workloads to one worker; the engines must
  // also behave with a pool larger than the input.
  auto db = SeededDb(2, 2041);
  ThreadPool pool(kWorkers);
  SimilaritySearch engine(db.get(), std::make_unique<BiBranchFilter>());
  const KnnResult s = engine.Knn(db->tree(0), 1, nullptr);
  const KnnResult p = engine.Knn(db->tree(0), 1, &pool);
  EXPECT_EQ(p.neighbors, s.neighbors);

  const PairwiseDistances one =
      ComputePairwiseDistances(*SeededDb(1, 2043), kWorkers);
  EXPECT_EQ(one.size(), 1);

  InvertedFileIndex empty(2);
  empty.AddAll({}, &pool);
  EXPECT_EQ(empty.tree_count(), 0);
}

}  // namespace
}  // namespace treesim
