#include "util/safe_math.h"

#include <cstdint>
#include <limits>

#include "gtest/gtest.h"

namespace treesim {
namespace {

// Debug builds make overflow fatal; release builds saturate and count.
// Each overflow case asserts the matching behavior for the build at hand.
#ifndef NDEBUG
#define EXPECT_OVERFLOW(expr) EXPECT_DEATH((void)(expr), "overflow|out of range")
#else
#define EXPECT_OVERFLOW(expr) (void)(expr)
#endif

constexpr int32_t kMax32 = std::numeric_limits<int32_t>::max();
constexpr int32_t kMin32 = std::numeric_limits<int32_t>::min();
constexpr int64_t kMax64 = std::numeric_limits<int64_t>::max();
constexpr int64_t kMin64 = std::numeric_limits<int64_t>::min();

TEST(SafeMathTest, AddWithinRange) {
  EXPECT_EQ(CheckedAdd(2, 3), 5);
  EXPECT_EQ(CheckedAdd(-2, 3), 1);
  EXPECT_EQ(CheckedAdd(kMax32, 0), kMax32);
  EXPECT_EQ(CheckedAdd(kMax32 - 1, 1), kMax32);
  EXPECT_EQ(CheckedAdd(kMin32, kMax32), -1);
  EXPECT_EQ(CheckedAdd(kMax64 - 1, int64_t{1}), kMax64);
  EXPECT_EQ(CheckedAdd(uint64_t{1} << 63, uint64_t{0}), uint64_t{1} << 63);
}

TEST(SafeMathTest, SubWithinRange) {
  EXPECT_EQ(CheckedSub(3, 5), -2);
  EXPECT_EQ(CheckedSub(kMin32 + 1, 1), kMin32);
  EXPECT_EQ(CheckedSub(kMin64 + 1, int64_t{1}), kMin64);
}

TEST(SafeMathTest, MulWithinRange) {
  EXPECT_EQ(CheckedMul(6, 7), 42);
  EXPECT_EQ(CheckedMul(kMax32, 1), kMax32);
  EXPECT_EQ(CheckedMul(kMax32 / 2, 2), kMax32 - 1);
  EXPECT_EQ(CheckedMul<int64_t>(int64_t{1} << 31, int64_t{1} << 31),
            int64_t{1} << 62);
}

TEST(SafeMathTest, CastWithinRange) {
  EXPECT_EQ(CheckedCast<int>(int64_t{12345}), 12345);
  EXPECT_EQ(CheckedCast<int>(static_cast<int64_t>(kMax32)), kMax32);
  EXPECT_EQ(CheckedCast<int>(static_cast<int64_t>(kMin32)), kMin32);
  EXPECT_EQ(CheckedCast<uint32_t>(int64_t{0}), 0u);
  EXPECT_EQ(CheckedCast<int64_t>(uint64_t{42}), 42);
}

TEST(SafeMathTest, CheckedAddAnyDispatch) {
  // Integer instantiation goes through the checked path...
  EXPECT_EQ(CheckedAddAny(2, 3), 5);
  EXPECT_OVERFLOW(CheckedAddAny(kMax32, 1));
  // ...floating point adds directly (the Zhang-Shasha weighted kernel).
  EXPECT_DOUBLE_EQ(CheckedAddAny(0.5, 0.25), 0.75);
}

TEST(SafeMathOverflowTest, Int32Boundaries) {
  EXPECT_OVERFLOW(CheckedAdd(kMax32, 1));
  EXPECT_OVERFLOW(CheckedAdd(kMin32, -1));
  EXPECT_OVERFLOW(CheckedSub(kMin32, 1));
  EXPECT_OVERFLOW(CheckedSub(kMax32, -1));
  EXPECT_OVERFLOW(CheckedMul(kMax32 / 2 + 1, 2));
  EXPECT_OVERFLOW(CheckedMul(kMin32, -1));
}

TEST(SafeMathOverflowTest, Int64Boundaries) {
  EXPECT_OVERFLOW(CheckedAdd(kMax64, int64_t{1}));
  EXPECT_OVERFLOW(CheckedAdd(kMin64, int64_t{-1}));
  EXPECT_OVERFLOW(CheckedSub(kMin64, int64_t{1}));
  EXPECT_OVERFLOW(CheckedMul(kMax64 / 2 + 1, int64_t{2}));
  EXPECT_OVERFLOW(CheckedMul(int64_t{1} << 32, int64_t{1} << 32));
}

TEST(SafeMathOverflowTest, NarrowingCastOutOfRange) {
  EXPECT_OVERFLOW(CheckedCast<int>(static_cast<int64_t>(kMax32) + 1));
  EXPECT_OVERFLOW(CheckedCast<int>(static_cast<int64_t>(kMin32) - 1));
  EXPECT_OVERFLOW(CheckedCast<uint32_t>(-1));
  EXPECT_OVERFLOW(CheckedCast<int64_t>(std::numeric_limits<uint64_t>::max()));
}

#ifdef NDEBUG
// Release-only: the saturation path must clamp toward the overflow
// direction and make every event observable via the counter.
TEST(SafeMathSaturationTest, SaturatesAndCounts) {
  SafeMathStats::Reset();
  EXPECT_EQ(SafeMathStats::saturations(), 0u);

  EXPECT_EQ(CheckedAdd(kMax32, 1), kMax32);
  EXPECT_EQ(CheckedAdd(kMin32, -1), kMin32);
  EXPECT_EQ(CheckedSub(kMin32, 1), kMin32);
  EXPECT_EQ(CheckedSub(kMax32, -1), kMax32);
  EXPECT_EQ(CheckedMul(kMax64 / 2 + 1, int64_t{2}), kMax64);
  // (kMax64 / 2 + 1) * -2 is exactly kMin64 (no overflow), so push one
  // further to exercise the negative saturation direction.
  EXPECT_EQ(CheckedMul(kMax64 / 2 + 2, int64_t{-2}), kMin64);
  EXPECT_EQ(CheckedCast<int>(static_cast<int64_t>(kMax32) + 1), kMax32);
  EXPECT_EQ(CheckedCast<int>(static_cast<int64_t>(kMin32) - 1), kMin32);
  EXPECT_EQ(SafeMathStats::saturations(), 8u);

  SafeMathStats::Reset();
  EXPECT_EQ(SafeMathStats::saturations(), 0u);
  // In-range operations never touch the counter.
  EXPECT_EQ(CheckedAdd(1, 2), 3);
  EXPECT_EQ(SafeMathStats::saturations(), 0u);
}
#endif

}  // namespace
}  // namespace treesim
