#include "tree/traversal.h"

#include <algorithm>
#include <string>

#include "gtest/gtest.h"
#include "test_util.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

std::string Labels(const Tree& t, const std::vector<NodeId>& seq) {
  std::string out;
  for (const NodeId n : seq) out += std::string(t.LabelName(n));
  return out;
}

// The paper's T1 of Fig. 1/2: a{ b{c d} b{c d} e }.
constexpr char kPaperT1[] = "a{b{c d} b{c d} e}";

TEST(TraversalTest, PreorderMatchesDocumentOrder) {
  Tree t = MakeTree(kPaperT1);
  EXPECT_EQ(Labels(t, PreorderSequence(t)), "abcdbcde");
}

TEST(TraversalTest, PostorderVisitsChildrenFirst) {
  Tree t = MakeTree(kPaperT1);
  EXPECT_EQ(Labels(t, PostorderSequence(t)), "cdbcdbea");
}

TEST(TraversalTest, PositionsMatchFig2Annotations) {
  // Fig. 2 annotates T1 as a(1,8) b(2,3) c(3,1) d(4,2) b(5,6) c(6,4)
  // d(7,5) e(8,7).
  Tree t = MakeTree(kPaperT1);
  const TraversalPositions pos = ComputePositions(t);
  const std::vector<NodeId> pre = PreorderSequence(t);
  const std::vector<std::pair<int, int>> expected = {
      {1, 8}, {2, 3}, {3, 1}, {4, 2}, {5, 6}, {6, 4}, {7, 5}, {8, 7}};
  ASSERT_EQ(pre.size(), expected.size());
  for (size_t i = 0; i < pre.size(); ++i) {
    EXPECT_EQ(pos.pre[static_cast<size_t>(pre[i])], expected[i].first);
    EXPECT_EQ(pos.post[static_cast<size_t>(pre[i])], expected[i].second);
  }
}

TEST(TraversalTest, PositionsArePermutations) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = RandomTree(rng.UniformInt(1, 60), pool, dict, rng);
    const TraversalPositions pos = ComputePositions(t);
    std::vector<int> pre = pos.pre;
    std::vector<int> post = pos.post;
    std::sort(pre.begin(), pre.end());
    std::sort(post.begin(), post.end());
    for (int i = 0; i < t.size(); ++i) {
      EXPECT_EQ(pre[static_cast<size_t>(i)], i + 1);
      EXPECT_EQ(post[static_cast<size_t>(i)], i + 1);
    }
  }
}

TEST(TraversalTest, AncestorsHaveSmallerPreLargerPost) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(13);
  Tree t = RandomTree(80, pool, dict, rng);
  const TraversalPositions pos = ComputePositions(t);
  for (NodeId n = 0; n < t.size(); ++n) {
    for (NodeId p = t.parent(n); p != kInvalidNode; p = t.parent(p)) {
      EXPECT_LT(pos.pre[static_cast<size_t>(p)],
                pos.pre[static_cast<size_t>(n)]);
      EXPECT_GT(pos.post[static_cast<size_t>(p)],
                pos.post[static_cast<size_t>(n)]);
    }
  }
}

TEST(TraversalTest, DepthsAndHeights) {
  Tree t = MakeTree("a{b{c d} e}");
  const std::vector<NodeId> pre = PreorderSequence(t);  // a b c d e
  const std::vector<int> depth = NodeDepths(t);
  const std::vector<int> height = NodeHeights(t);
  EXPECT_EQ(depth[static_cast<size_t>(pre[0])], 1);  // a
  EXPECT_EQ(depth[static_cast<size_t>(pre[1])], 2);  // b
  EXPECT_EQ(depth[static_cast<size_t>(pre[2])], 3);  // c
  EXPECT_EQ(depth[static_cast<size_t>(pre[4])], 2);  // e
  EXPECT_EQ(height[static_cast<size_t>(pre[0])], 3);  // a
  EXPECT_EQ(height[static_cast<size_t>(pre[1])], 2);  // b
  EXPECT_EQ(height[static_cast<size_t>(pre[2])], 1);  // c
  EXPECT_EQ(TreeHeight(t), 3);
}

TEST(TraversalTest, SingleNodeMetrics) {
  Tree t = MakeTree("x");
  EXPECT_EQ(TreeHeight(t), 1);
  EXPECT_EQ(LeafCount(t), 1);
  EXPECT_EQ(NodeDegrees(t), std::vector<int>{0});
}

TEST(TraversalTest, LeafCountAndDegrees) {
  Tree t = MakeTree("a{b{c d} e}");
  EXPECT_EQ(LeafCount(t), 3);  // c, d, e
  const std::vector<NodeId> pre = PreorderSequence(t);
  const std::vector<int> deg = NodeDegrees(t);
  EXPECT_EQ(deg[static_cast<size_t>(pre[0])], 2);  // a
  EXPECT_EQ(deg[static_cast<size_t>(pre[1])], 2);  // b
  EXPECT_EQ(deg[static_cast<size_t>(pre[2])], 0);  // c
}

TEST(TraversalTest, DegreesAgreeWithTreeDegree) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 2);
  Rng rng(17);
  Tree t = RandomTree(100, pool, dict, rng);
  const std::vector<int> deg = NodeDegrees(t);
  for (NodeId n = 0; n < t.size(); ++n) {
    EXPECT_EQ(deg[static_cast<size_t>(n)], t.Degree(n));
  }
}

TEST(TraversalTest, DeepChainIterativeSafety) {
  auto dict = std::make_shared<LabelDictionary>();
  TreeBuilder b(dict);
  NodeId node = b.AddRoot("n");
  for (int i = 0; i < 100000; ++i) node = b.AddChild(node, "n");
  Tree t = std::move(b).Build();
  EXPECT_EQ(static_cast<int>(PreorderSequence(t).size()), t.size());
  EXPECT_EQ(static_cast<int>(PostorderSequence(t).size()), t.size());
  EXPECT_EQ(TreeHeight(t), t.size());
  EXPECT_EQ(LeafCount(t), 1);
}

}  // namespace
}  // namespace treesim
