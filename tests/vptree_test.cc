#include "core/vptree.h"

#include <algorithm>
#include <memory>

#include "gtest/gtest.h"
#include "datagen/synthetic_generator.h"
#include "filters/bibranch_filter.h"
#include "search/similarity_search.h"
#include "test_util.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

std::vector<BranchProfile> ProfilesOf(const std::vector<Tree>& trees,
                                      BranchDictionary& dict) {
  std::vector<BranchProfile> out;
  out.reserve(trees.size());
  for (const Tree& t : trees) out.push_back(BranchProfile::FromTree(t, dict));
  return out;
}

std::vector<int> BruteForceBall(const std::vector<BranchProfile>& profiles,
                                const BranchProfile& query, int64_t radius) {
  std::vector<int> out;
  for (size_t i = 0; i < profiles.size(); ++i) {
    if (BranchDistance(query, profiles[i]) <= radius) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

TEST(VpTreeTest, EmptyAndSingleton) {
  std::vector<BranchProfile> profiles;
  Rng rng(1);
  VpTree empty(&profiles, rng);
  auto dict = std::make_shared<LabelDictionary>();
  BranchDictionary branches(2);
  const BranchProfile q =
      BranchProfile::FromTree(MakeTree("a", dict), branches);
  EXPECT_TRUE(empty.RangeSearch(q, 100).empty());

  profiles.push_back(q);
  Rng rng2(1);
  VpTree single(&profiles, rng2);
  EXPECT_EQ(single.RangeSearch(q, 0), std::vector<int>{0});
  EXPECT_TRUE(single.RangeSearch(q, -1).empty());
}

TEST(VpTreeTest, MatchesBruteForceOnRandomTrees) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 4);
  Rng rng(1301);
  BranchDictionary branches(2);
  std::vector<Tree> trees;
  for (int i = 0; i < 120; ++i) {
    trees.push_back(RandomTree(rng.UniformInt(1, 30), pool, dict, rng));
  }
  const std::vector<BranchProfile> profiles = ProfilesOf(trees, branches);
  Rng tree_rng(7);
  const VpTree index(&profiles, tree_rng);
  for (int qi = 0; qi < 15; ++qi) {
    const BranchProfile& query = profiles[static_cast<size_t>(qi * 8)];
    for (const int64_t radius : {0, 5, 15, 40, 200}) {
      EXPECT_EQ(index.RangeSearch(query, radius),
                BruteForceBall(profiles, query, radius))
          << "query " << qi << " radius " << radius;
    }
  }
}

TEST(VpTreeTest, ExternalQueryNotInIndex) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(1303);
  BranchDictionary branches(2);
  std::vector<Tree> trees;
  for (int i = 0; i < 60; ++i) {
    trees.push_back(RandomTree(rng.UniformInt(1, 20), pool, dict, rng));
  }
  const std::vector<BranchProfile> profiles = ProfilesOf(trees, branches);
  Rng tree_rng(9);
  const VpTree index(&profiles, tree_rng);
  Tree query_tree = RandomTree(15, pool, dict, rng);
  const BranchProfile query = BranchProfile::FromTree(query_tree, branches);
  for (const int64_t radius : {3, 20, 80}) {
    EXPECT_EQ(index.RangeSearch(query, radius),
              BruteForceBall(profiles, query, radius));
  }
}

TEST(VpTreeTest, HandlesDistanceZeroDuplicates) {
  // BDist is a pseudo-metric: the Fig. 4 pair and exact duplicates all sit
  // at distance 0 and must all be retrieved.
  auto dict = std::make_shared<LabelDictionary>();
  BranchDictionary branches(2);
  std::vector<Tree> trees;
  for (int i = 0; i < 10; ++i) trees.push_back(MakeTree("r{a{b} b{a}}", dict));
  trees.push_back(MakeTree("r{a{b{a}} b}", dict));  // BDist 0 from the above
  trees.push_back(MakeTree("x{y z}", dict));
  const std::vector<BranchProfile> profiles = ProfilesOf(trees, branches);
  Rng rng(3);
  const VpTree index(&profiles, rng);
  const std::vector<int> hits = index.RangeSearch(profiles[0], 0);
  EXPECT_EQ(hits.size(), 11u);  // 10 duplicates + the Fig. 4 twin
}

TEST(VpTreeTest, SublinearOnSpreadOutData) {
  // Metric indexing pays off when pairwise distances are spread out (here:
  // tree sizes from 5 to 150, so BDist spans a wide range). On
  // concentrated-distance data it degenerates toward a linear scan — the
  // intrinsic-dimensionality effect of Chavez & Navarro (the paper's [2]);
  // see the companion NearLinearOnConcentratedData test.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 6);
  Rng rng(1307);
  BranchDictionary branches(2);
  std::vector<Tree> trees;
  for (int i = 0; i < 600; ++i) {
    trees.push_back(RandomTree(5 + rng.UniformInt(0, 145), pool, dict, rng));
  }
  const std::vector<BranchProfile> profiles = ProfilesOf(trees, branches);
  Rng tree_rng(11);
  const VpTree index(&profiles, tree_rng);
  EXPECT_GT(index.Depth(), 3);

  int64_t total_calls = 0;
  for (int qi = 0; qi < 10; ++qi) {
    int64_t calls = 0;
    const BranchProfile& query = profiles[static_cast<size_t>(qi * 37)];
    const std::vector<int> hits = index.RangeSearch(query, 10, &calls);
    EXPECT_EQ(hits, BruteForceBall(profiles, query, 10));
    total_calls += calls;
  }
  // Far fewer distance evaluations than 10 linear scans (10 * 600).
  EXPECT_LT(total_calls, 10 * 600 / 2);
}

TEST(VpTreeTest, NearLinearOnConcentratedData) {
  // Equal-size random trees concentrate BDist around |T1|+|T2| minus a
  // small overlap; shell pruning then rarely applies. Documented honest
  // behavior: correctness holds, sublinearity does not.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 8);
  Rng rng(1311);
  BranchDictionary branches(2);
  std::vector<Tree> trees;
  for (int i = 0; i < 200; ++i) {
    trees.push_back(RandomTree(30, pool, dict, rng));
  }
  const std::vector<BranchProfile> profiles = ProfilesOf(trees, branches);
  Rng tree_rng(13);
  const VpTree index(&profiles, tree_rng);
  int64_t calls = 0;
  const std::vector<int> hits = index.RangeSearch(profiles[0], 10, &calls);
  EXPECT_EQ(hits, BruteForceBall(profiles, profiles[0], 10));
  EXPECT_GT(calls, 100);  // most of the 200 vectors are still touched
}

TEST(VpTreeFilterIntegrationTest, VpTreeRangeResultsMatchLinearFilter) {
  auto dict = std::make_shared<LabelDictionary>();
  SyntheticParams params;
  params.size_mean = 20;
  params.label_count = 6;
  SyntheticGenerator gen(params, dict, 1309);
  auto db = std::make_unique<TreeDatabase>(dict);
  for (Tree& t : gen.GenerateDataset(80)) db->Add(std::move(t));

  for (const bool positional : {true, false}) {
    BiBranchFilter::Options linear_opts;
    linear_opts.positional = positional;
    BiBranchFilter::Options vp_opts = linear_opts;
    vp_opts.use_vptree = true;
    SimilaritySearch linear(db.get(),
                            std::make_unique<BiBranchFilter>(linear_opts));
    SimilaritySearch vp(db.get(), std::make_unique<BiBranchFilter>(vp_opts));
    for (int qi = 0; qi < 8; ++qi) {
      const Tree& query = db->tree(qi * 9);
      for (const int tau : {0, 2, 5}) {
        const RangeResult a = linear.Range(query, tau);
        const RangeResult b = vp.Range(query, tau);
        EXPECT_EQ(a.matches, b.matches)
            << "positional=" << positional << " tau=" << tau;
        // Identical candidate sets (the contract of TryRangeCandidates).
        EXPECT_EQ(a.stats.candidates, b.stats.candidates);
      }
    }
  }
}

}  // namespace
}  // namespace treesim
