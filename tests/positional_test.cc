#include "core/positional.h"

#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"
#include "ted/zhang_shasha.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

class PaperPairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dict_ = std::make_shared<LabelDictionary>();
    t1_ = MakeTree("a{b{c d} b{c d} e}", dict_);
    t2_ = MakeTree("a{b{c d b{e}} c d e}", dict_);
    branches_ = std::make_unique<BranchDictionary>(2);
    p1_ = BranchProfile::FromTree(t1_, *branches_);
    p2_ = BranchProfile::FromTree(t2_, *branches_);
  }

  const BranchEntry* FindEntry(const BranchProfile& p,
                               const std::string& name) {
    for (const BranchEntry& e : p.entries) {
      if (branches_->Name(e.branch, *dict_) == name) return &e;
    }
    return nullptr;
  }

  std::shared_ptr<LabelDictionary> dict_;
  Tree t1_, t2_;
  std::unique_ptr<BranchDictionary> branches_;
  BranchProfile p1_, p2_;
};

TEST_F(PaperPairTest, Section42MatchingExamples) {
  // "(BiB(c,ε,d),3,1) in T1 can only be mapped to (BiB(c,ε,d),3,1) in T2;
  //  (BiB(c,ε,d),6,4) and (BiB(c,ε,d),7,6) cannot be mapped to each other"
  // at pr = 1.
  const BranchEntry* c1 = FindEntry(p1_, "c(\xCE\xB5,d)");
  const BranchEntry* c2 = FindEntry(p2_, "c(\xCE\xB5,d)");
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c1->occurrences,
            (std::vector<std::pair<int, int>>{{3, 1}, {6, 4}}));
  EXPECT_EQ(c2->occurrences,
            (std::vector<std::pair<int, int>>{{3, 1}, {7, 6}}));
  EXPECT_EQ(MaxPositionalMatching(*c1, *c2, 1, MatchingMode::kExact), 1);

  // "(BiB(e,ε,ε),8,7) in T1 can be mapped to (...,9,8) in T2, but cannot be
  //  mapped to (...,6,3)".
  const BranchEntry* e1 = FindEntry(p1_, "e(\xCE\xB5,\xCE\xB5)");
  const BranchEntry* e2 = FindEntry(p2_, "e(\xCE\xB5,\xCE\xB5)");
  ASSERT_NE(e1, nullptr);
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(e1->occurrences, (std::vector<std::pair<int, int>>{{8, 7}}));
  EXPECT_EQ(e2->occurrences,
            (std::vector<std::pair<int, int>>{{6, 3}, {9, 8}}));
  EXPECT_EQ(MaxPositionalMatching(*e1, *e2, 1, MatchingMode::kExact), 1);
  EXPECT_EQ(MaxPositionalMatching(*e1, *e2, 0, MatchingMode::kExact), 0);
}

TEST_F(PaperPairTest, PosBDistShrinksToBDist) {
  int64_t prev = -1;
  for (int pr = 0; pr <= 10; ++pr) {
    const int64_t d = PositionalBranchDistance(p1_, p2_, pr);
    if (prev >= 0) {
      EXPECT_LE(d, prev) << "pr=" << pr;
    }
    prev = d;
  }
  // At pr >= max size every equal pair matches: PosBDist == BDist == 9.
  EXPECT_EQ(PositionalBranchDistance(p1_, p2_, 9), BranchDistance(p1_, p2_));
}

TEST_F(PaperPairTest, OptimisticBoundIsSoundAndAtLeastPlainBound) {
  const int propt = OptimisticBound(p1_, p2_);
  const int edist = TreeEditDistance(t1_, t2_);
  EXPECT_LE(propt, edist);
  EXPECT_GE(propt, BranchDistanceLowerBound(p1_, p2_));
  EXPECT_GE(propt, std::abs(p1_.tree_size - p2_.tree_size));
}

TEST(MaxMatching1DTest, BasicCases) {
  EXPECT_EQ(MaxMatching1D({1, 2, 3}, {1, 2, 3}, 0), 3);
  EXPECT_EQ(MaxMatching1D({1, 2, 3}, {4, 5, 6}, 0), 0);
  EXPECT_EQ(MaxMatching1D({1, 2, 3}, {4, 5, 6}, 3), 3);
  EXPECT_EQ(MaxMatching1D({1, 5, 9}, {2, 6}, 1), 2);
  EXPECT_EQ(MaxMatching1D({}, {1, 2}, 5), 0);
  EXPECT_EQ(MaxMatching1D({1}, {}, 5), 0);
}

TEST(MaxMatching1DTest, GreedyIsOptimalOnOverlaps) {
  // x=5 could grab y=4 or y=6; either way both xs match.
  EXPECT_EQ(MaxMatching1D({3, 5}, {4, 6}, 1), 2);
  // One y shared by two xs: only one can match.
  EXPECT_EQ(MaxMatching1D({4, 6}, {5}, 1), 1);
}

TEST(MaxMatchingExactTest, RespectsBothDimensions) {
  // Pre positions match within 1 but post positions are far.
  const std::vector<std::pair<int, int>> a = {{1, 10}};
  const std::vector<std::pair<int, int>> b = {{2, 1}};
  EXPECT_EQ(MaxMatchingExact(a, b, 1), 0);
  EXPECT_EQ(MaxMatchingExact(a, b, 9), 1);
}

TEST(MaxMatchingExactTest, AugmentingPathReassigns) {
  // a0 can take b0 or b1; a1 can only take b0. Exact matching finds 2 by
  // rerouting a0 to b1.
  const std::vector<std::pair<int, int>> a = {{5, 5}, {4, 4}};
  const std::vector<std::pair<int, int>> b = {{4, 4}, {6, 6}};
  EXPECT_EQ(MaxMatchingExact(a, b, 1), 2);
}

TEST(MaxMatchingModesTest, GreedyNeverBelowExact) {
  // The min-of-1D relaxation is an upper bound of the 2-D matching.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 2);
  Rng rng(101);
  BranchDictionary branches(2);
  for (int trial = 0; trial < 40; ++trial) {
    Tree a = RandomTree(rng.UniformInt(4, 40), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(4, 40), pool, dict, rng);
    const BranchProfile pa = BranchProfile::FromTree(a, branches);
    const BranchProfile pb = BranchProfile::FromTree(b, branches);
    for (int pr = 0; pr <= 8; pr += 2) {
      for (size_t i = 0, j = 0; i < pa.entries.size() && j < pb.entries.size();) {
        if (pa.entries[i].branch < pb.entries[j].branch) {
          ++i;
        } else if (pa.entries[i].branch > pb.entries[j].branch) {
          ++j;
        } else {
          const int exact = MaxPositionalMatching(pa.entries[i],
                                                  pb.entries[j], pr,
                                                  MatchingMode::kExact);
          const int greedy = MaxPositionalMatching(pa.entries[i],
                                                   pb.entries[j], pr,
                                                   MatchingMode::kGreedy);
          EXPECT_GE(greedy, exact);
          ++i;
          ++j;
        }
      }
    }
  }
}

TEST(PositionalDistanceTest, IdenticalTreesZeroAtPrZero) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b{c} d}", dict);
  Tree b = MakeTree("a{b{c} d}", dict);
  BranchDictionary branches(2);
  const BranchProfile pa = BranchProfile::FromTree(a, branches);
  const BranchProfile pb = BranchProfile::FromTree(b, branches);
  EXPECT_EQ(PositionalBranchDistance(pa, pb, 0), 0);
  EXPECT_EQ(OptimisticBound(pa, pb), 0);
}

TEST(PositionalDistanceTest, AtLeastBranchDistance) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(103);
  BranchDictionary branches(2);
  for (int trial = 0; trial < 30; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 30), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 30), pool, dict, rng);
    const BranchProfile pa = BranchProfile::FromTree(a, branches);
    const BranchProfile pb = BranchProfile::FromTree(b, branches);
    const int64_t bdist = BranchDistance(pa, pb);
    for (int pr = 0; pr <= 35; pr += 7) {
      EXPECT_GE(PositionalBranchDistance(pa, pb, pr), bdist);
    }
    EXPECT_EQ(PositionalBranchDistance(pa, pb,
                                       std::max(a.size(), b.size())),
              bdist);
  }
}

TEST(RangeFilterTest, EquivalentToOptimisticBoundDecision) {
  // Section 4.3: the single PosBDist(tau) test accepts exactly when
  // propt <= tau.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(107);
  BranchDictionary branches(2);
  for (int trial = 0; trial < 30; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 25), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 25), pool, dict, rng);
    const BranchProfile pa = BranchProfile::FromTree(a, branches);
    const BranchProfile pb = BranchProfile::FromTree(b, branches);
    const int propt = OptimisticBound(pa, pb, MatchingMode::kGreedy);
    for (int tau = 0; tau <= 12; ++tau) {
      EXPECT_EQ(RangeFilterPasses(pa, pb, tau, MatchingMode::kGreedy),
                propt <= tau)
          << "tau=" << tau << " propt=" << propt;
    }
  }
}

TEST(RangeFilterTest, NegativeTauNeverPasses) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a", dict);
  Tree b = MakeTree("a", dict);
  BranchDictionary branches(2);
  const BranchProfile pa = BranchProfile::FromTree(a, branches);
  const BranchProfile pb = BranchProfile::FromTree(b, branches);
  EXPECT_FALSE(RangeFilterPasses(pa, pb, -1));
  EXPECT_TRUE(RangeFilterPasses(pa, pb, 0));
}

}  // namespace
}  // namespace treesim
