// The Section 2.1 extension end-to-end: filter-and-refine search under a
// general cost model, with filter bounds scaled by the minimum operation
// cost. Exactness is verified against a weighted sequential scan.
#include <memory>

#include "gtest/gtest.h"
#include "filters/bibranch_filter.h"
#include "filters/histogram_filter.h"
#include "search/similarity_search.h"
#include "test_util.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

/// Ops cost between 0.5 and 1.5 depending on the labels involved.
class SkewedCosts final : public CostModel {
 public:
  double Relabel(LabelId a, LabelId b) const override {
    return a == b ? 0.0 : 0.5 + 0.5 * ((a + b) % 3);
  }
  double Insert(LabelId l) const override { return 0.5 + 0.25 * (l % 3); }
  double Delete(LabelId l) const override { return 0.5 + 0.5 * (l % 2); }
  double MinOperationCost() const override { return 0.5; }
};

class WeightedSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dict_ = std::make_shared<LabelDictionary>();
    pool_ = MakeLabelPool(dict_, 4);
    Rng rng(1601);
    db_ = std::make_unique<TreeDatabase>(dict_);
    for (int i = 0; i < 50; ++i) {
      db_->Add(RandomTree(rng.UniformInt(1, 20), pool_, dict_, rng));
    }
    sequential_ = std::make_unique<SimilaritySearch>(db_.get(), nullptr);
  }

  std::shared_ptr<LabelDictionary> dict_;
  std::vector<LabelId> pool_;
  std::unique_ptr<TreeDatabase> db_;
  std::unique_ptr<SimilaritySearch> sequential_;
  SkewedCosts costs_;
};

TEST_F(WeightedSearchTest, RangeMatchesWeightedSequentialScan) {
  SimilaritySearch bibranch(db_.get(), std::make_unique<BiBranchFilter>());
  SimilaritySearch histo(db_.get(), std::make_unique<HistogramFilter>());
  Rng rng(1607);
  for (int qi = 0; qi < 8; ++qi) {
    Tree query = RandomTree(rng.UniformInt(1, 20), pool_, dict_, rng);
    for (const double tau : {0.5, 1.75, 4.0, 8.25}) {
      const WeightedRangeResult expected =
          sequential_->RangeWeighted(query, tau, costs_);
      const WeightedRangeResult bb =
          bibranch.RangeWeighted(query, tau, costs_);
      const WeightedRangeResult hi = histo.RangeWeighted(query, tau, costs_);
      EXPECT_EQ(bb.matches, expected.matches) << "tau=" << tau;
      EXPECT_EQ(hi.matches, expected.matches) << "tau=" << tau;
      EXPECT_LE(bb.stats.candidates, expected.stats.candidates);
    }
  }
}

TEST_F(WeightedSearchTest, KnnMatchesWeightedSequentialScan) {
  SimilaritySearch bibranch(db_.get(), std::make_unique<BiBranchFilter>());
  Rng rng(1609);
  for (int qi = 0; qi < 8; ++qi) {
    Tree query = RandomTree(rng.UniformInt(1, 20), pool_, dict_, rng);
    for (const int k : {1, 4, 10}) {
      const WeightedKnnResult expected =
          sequential_->KnnWeighted(query, k, costs_);
      const WeightedKnnResult got = bibranch.KnnWeighted(query, k, costs_);
      EXPECT_EQ(got.neighbors, expected.neighbors) << "k=" << k;
      EXPECT_LE(got.stats.edit_distance_calls,
                expected.stats.edit_distance_calls);
    }
  }
}

TEST_F(WeightedSearchTest, UnitCostsReduceToIntegerEngine) {
  SimilaritySearch bibranch(db_.get(), std::make_unique<BiBranchFilter>());
  Rng rng(1613);
  Tree query = RandomTree(12, pool_, dict_, rng);
  const RangeResult unit = bibranch.Range(query, 3);
  const WeightedRangeResult weighted =
      bibranch.RangeWeighted(query, 3.0, UnitCostModel::Get());
  ASSERT_EQ(unit.matches.size(), weighted.matches.size());
  for (size_t i = 0; i < unit.matches.size(); ++i) {
    EXPECT_EQ(unit.matches[i].first, weighted.matches[i].first);
    EXPECT_DOUBLE_EQ(static_cast<double>(unit.matches[i].second),
                     weighted.matches[i].second);
  }

  const KnnResult unit_knn = bibranch.Knn(query, 5);
  const WeightedKnnResult weighted_knn =
      bibranch.KnnWeighted(query, 5, UnitCostModel::Get());
  ASSERT_EQ(unit_knn.neighbors.size(), weighted_knn.neighbors.size());
  for (size_t i = 0; i < unit_knn.neighbors.size(); ++i) {
    EXPECT_EQ(unit_knn.neighbors[i].first, weighted_knn.neighbors[i].first);
    EXPECT_DOUBLE_EQ(static_cast<double>(unit_knn.neighbors[i].second),
                     weighted_knn.neighbors[i].second);
  }
}

TEST_F(WeightedSearchTest, SelfQueryAtDistanceZero) {
  SimilaritySearch bibranch(db_.get(), std::make_unique<BiBranchFilter>());
  const WeightedKnnResult r = bibranch.KnnWeighted(db_->tree(5), 1, costs_);
  ASSERT_EQ(r.neighbors.size(), 1u);
  EXPECT_DOUBLE_EQ(r.neighbors[0].second, 0.0);
}

}  // namespace
}  // namespace treesim
