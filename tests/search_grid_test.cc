// Parameterized end-to-end grid: every filter configuration against every
// dataset shape, for range and k-NN queries, checked for exact agreement
// with the sequential scan. This is the closure test over the whole engine:
// any unsound bound, broken candidate set or mis-ordered k-NN heap anywhere
// in the stack shows up here.
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "datagen/dblp_generator.h"
#include "datagen/edit_noise.h"
#include "datagen/synthetic_generator.h"
#include "filters/bibranch_filter.h"
#include "filters/histogram_filter.h"
#include "filters/sequence_filter.h"
#include "search/similarity_search.h"
#include "test_util.h"

namespace treesim {
namespace {

enum class DataKind { kRandom, kClustered, kDblp, kDeep };
enum class EngineKind {
  kBiBranch,
  kBiBranchPlain,
  kBiBranchQ3,
  kBiBranchGreedy,
  kBiBranchVpTree,
  kHisto,
  kHistoFolded,
  kSeqQGram,
};

std::string DataName(DataKind kind) {
  switch (kind) {
    case DataKind::kRandom:
      return "Random";
    case DataKind::kClustered:
      return "Clustered";
    case DataKind::kDblp:
      return "Dblp";
    case DataKind::kDeep:
      return "Deep";
  }
  return "?";
}

std::string EngineName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kBiBranch:
      return "BiBranch";
    case EngineKind::kBiBranchPlain:
      return "BiBranchPlain";
    case EngineKind::kBiBranchQ3:
      return "BiBranchQ3";
    case EngineKind::kBiBranchGreedy:
      return "BiBranchGreedy";
    case EngineKind::kBiBranchVpTree:
      return "BiBranchVpTree";
    case EngineKind::kHisto:
      return "Histo";
    case EngineKind::kHistoFolded:
      return "HistoFolded";
    case EngineKind::kSeqQGram:
      return "SeqQGram";
  }
  return "?";
}

std::unique_ptr<TreeDatabase> MakeData(
    DataKind kind, const std::shared_ptr<LabelDictionary>& dict) {
  auto db = std::make_unique<TreeDatabase>(dict);
  switch (kind) {
    case DataKind::kRandom: {
      const std::vector<LabelId> pool = testing::MakeLabelPool(dict, 5);
      Rng rng(1701);
      for (int i = 0; i < 45; ++i) {
        db->Add(testing::RandomTree(rng.UniformInt(1, 22), pool, dict, rng));
      }
      break;
    }
    case DataKind::kClustered: {
      SyntheticParams params;
      params.size_mean = 16;
      params.label_count = 5;
      params.seed_count = 5;
      SyntheticGenerator gen(params, dict, 1703);
      for (Tree& t : gen.GenerateDataset(45)) db->Add(std::move(t));
      break;
    }
    case DataKind::kDblp: {
      DblpGenerator gen(DblpParams{}, dict, 1709);
      for (Tree& t : gen.Generate(45)) db->Add(std::move(t));
      break;
    }
    case DataKind::kDeep: {
      SyntheticParams params;
      params.fanout_mean = 1.2;
      params.fanout_stddev = 0.3;
      params.size_mean = 14;
      params.label_count = 4;
      params.seed_count = 5;
      SyntheticGenerator gen(params, dict, 1721);
      for (Tree& t : gen.GenerateDataset(45)) db->Add(std::move(t));
      break;
    }
  }
  return db;
}

std::unique_ptr<FilterIndex> MakeEngineFilter(EngineKind kind) {
  switch (kind) {
    case EngineKind::kBiBranch:
      return std::make_unique<BiBranchFilter>();
    case EngineKind::kBiBranchPlain: {
      BiBranchFilter::Options o;
      o.positional = false;
      return std::make_unique<BiBranchFilter>(o);
    }
    case EngineKind::kBiBranchQ3: {
      BiBranchFilter::Options o;
      o.q = 3;
      return std::make_unique<BiBranchFilter>(o);
    }
    case EngineKind::kBiBranchGreedy: {
      BiBranchFilter::Options o;
      o.matching = MatchingMode::kGreedy;
      return std::make_unique<BiBranchFilter>(o);
    }
    case EngineKind::kBiBranchVpTree: {
      BiBranchFilter::Options o;
      o.use_vptree = true;
      return std::make_unique<BiBranchFilter>(o);
    }
    case EngineKind::kHisto:
      return std::make_unique<HistogramFilter>();
    case EngineKind::kHistoFolded: {
      HistogramFilter::Options o;
      o.label_buckets = 6;
      o.degree_buckets = 6;
      return std::make_unique<HistogramFilter>(o);
    }
    case EngineKind::kSeqQGram:
      return std::make_unique<SequenceFilter>();
  }
  return nullptr;
}

using GridParam = std::tuple<DataKind, EngineKind>;

class SearchGridTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(SearchGridTest, RangeAndKnnMatchSequentialScan) {
  const auto [data_kind, engine_kind] = GetParam();
  auto dict = std::make_shared<LabelDictionary>();
  auto db = MakeData(data_kind, dict);
  SimilaritySearch sequential(db.get(), nullptr);
  SimilaritySearch filtered(db.get(), MakeEngineFilter(engine_kind));

  Rng rng(1733);
  for (int qi = 0; qi < 5; ++qi) {
    // Mix in-database and perturbed queries.
    const Tree& base = db->tree(
        static_cast<int>(rng.UniformIndex(static_cast<size_t>(db->size()))));
    Tree query = base;
    if (qi % 2 == 1) {
      std::vector<LabelId> pool;
      for (LabelId l = 1; l < dict->id_bound(); ++l) pool.push_back(l);
      query = ApplyRandomEdits(base, 2, pool, rng).tree;
    }
    for (const int tau : {0, 2, 5}) {
      EXPECT_EQ(filtered.Range(query, tau).matches,
                sequential.Range(query, tau).matches)
          << "tau=" << tau;
    }
    for (const int k : {1, 4}) {
      EXPECT_EQ(filtered.Knn(query, k).neighbors,
                sequential.Knn(query, k).neighbors)
          << "k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, SearchGridTest,
    ::testing::Combine(
        ::testing::Values(DataKind::kRandom, DataKind::kClustered,
                          DataKind::kDblp, DataKind::kDeep),
        ::testing::Values(EngineKind::kBiBranch, EngineKind::kBiBranchPlain,
                          EngineKind::kBiBranchQ3,
                          EngineKind::kBiBranchGreedy,
                          EngineKind::kBiBranchVpTree, EngineKind::kHisto,
                          EngineKind::kHistoFolded, EngineKind::kSeqQGram)),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return DataName(std::get<0>(info.param)) +
             EngineName(std::get<1>(info.param));
    });

}  // namespace
}  // namespace treesim
