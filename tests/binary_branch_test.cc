#include "core/binary_branch.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "test_util.h"
#include "tree/traversal.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

// Collects branch-name -> count for readable assertions.
std::map<std::string, int> BranchCounts(const Tree& t, BranchDictionary& dict) {
  std::map<std::string, int> counts;
  for (const BranchOccurrence& occ : ExtractBranches(t, dict)) {
    ++counts[dict.Name(occ.branch, *t.label_dict())];
  }
  return counts;
}

TEST(BranchDictionaryTest, KeyLengthAndFactor) {
  EXPECT_EQ(BranchDictionary(2).key_length(), 3);
  EXPECT_EQ(BranchDictionary(3).key_length(), 7);
  EXPECT_EQ(BranchDictionary(4).key_length(), 15);
  EXPECT_EQ(BranchDictionary(2).edit_distance_factor(), 5);
  EXPECT_EQ(BranchDictionary(3).edit_distance_factor(), 9);
  EXPECT_EQ(BranchDictionary(4).edit_distance_factor(), 13);
}

TEST(BranchDictionaryTest, InternIsIdempotentAndDense) {
  BranchDictionary dict(2);
  const BranchKey k1 = {1, 2, 0};
  const BranchKey k2 = {1, 0, 0};
  EXPECT_EQ(dict.Intern(k1), 0u);
  EXPECT_EQ(dict.Intern(k2), 1u);
  EXPECT_EQ(dict.Intern(k1), 0u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Key(1), k2);
  ASSERT_TRUE(dict.Lookup(k1).has_value());
  EXPECT_EQ(*dict.Lookup(k1), 0u);
  EXPECT_FALSE(dict.Lookup({5, 5, 5}).has_value());
}

TEST(BranchDictionaryDeathTest, WrongKeyLengthAborts) {
  BranchDictionary dict(2);
  EXPECT_DEATH(dict.Intern({1, 2}), "");
}

TEST(BranchDictionaryDeathTest, QBelowTwoAborts) {
  EXPECT_DEATH(BranchDictionary(1), "");
}

TEST(ExtractBranchesTest, PaperT1Vector) {
  // Fig. 3(b): BRV(T1) over the lexicographic vocabulary
  //   a(b,ε) b(c,b) b(c,c) b(c,e) b(e,ε) c(ε,d) d(ε,b) d(ε,e) d(ε,ε) e(ε,ε)
  // is (1,1,0,1,0,2,0,0,2,1).
  auto dict = std::make_shared<LabelDictionary>();
  Tree t1 = MakeTree("a{b{c d} b{c d} e}", dict);
  BranchDictionary branches(2);
  const std::map<std::string, int> counts = BranchCounts(t1, branches);
  const std::map<std::string, int> expected = {
      {"a(b,\xCE\xB5)", 1}, {"b(c,b)", 1},          {"b(c,e)", 1},
      {"c(\xCE\xB5,d)", 2}, {"d(\xCE\xB5,\xCE\xB5)", 2},
      {"e(\xCE\xB5,\xCE\xB5)", 1},
  };
  EXPECT_EQ(counts, expected);
}

TEST(ExtractBranchesTest, PaperT2Vector) {
  // Fig. 3(b): BRV(T2) = (1,0,1,0,1,2,1,1,0,2) over the same vocabulary.
  auto dict = std::make_shared<LabelDictionary>();
  Tree t2 = MakeTree("a{b{c d b{e}} c d e}", dict);
  BranchDictionary branches(2);
  const std::map<std::string, int> counts = BranchCounts(t2, branches);
  const std::map<std::string, int> expected = {
      {"a(b,\xCE\xB5)", 1}, {"b(c,c)", 1},          {"b(e,\xCE\xB5)", 1},
      {"c(\xCE\xB5,d)", 2}, {"d(\xCE\xB5,b)", 1},   {"d(\xCE\xB5,e)", 1},
      {"e(\xCE\xB5,\xCE\xB5)", 2},
  };
  EXPECT_EQ(counts, expected);
}

TEST(ExtractBranchesTest, OneBranchPerNodeWithPositions) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b{c d} b{c d} e}", dict);
  BranchDictionary branches(2);
  const std::vector<BranchOccurrence> occ = ExtractBranches(t, branches);
  ASSERT_EQ(static_cast<int>(occ.size()), t.size());
  // Extraction follows preorder: positions are 1..n in order.
  for (size_t i = 0; i < occ.size(); ++i) {
    EXPECT_EQ(occ[i].pre, static_cast<int>(i) + 1);
    EXPECT_GE(occ[i].post, 1);
    EXPECT_LE(occ[i].post, t.size());
  }
}

TEST(ExtractBranchesTest, SingleNodeTree) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a", dict);
  BranchDictionary branches(2);
  const std::vector<BranchOccurrence> occ = ExtractBranches(t, branches);
  ASSERT_EQ(occ.size(), 1u);
  EXPECT_EQ(branches.Name(occ[0].branch, *dict),
            "a(\xCE\xB5,\xCE\xB5)");
  EXPECT_EQ(occ[0].pre, 1);
  EXPECT_EQ(occ[0].post, 1);
}

TEST(ExtractBranchesTest, ThreeLevelBranchOfChain) {
  // For q=3 the branch rooted at a covers two levels of B(T) below it.
  // T = a{b{c}}: B(T): a.left=b, b.left=c; all rights are ε.
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b{c}}", dict);
  BranchDictionary branches(3);
  const std::vector<BranchOccurrence> occ = ExtractBranches(t, branches);
  ASSERT_EQ(occ.size(), 3u);
  EXPECT_EQ(branches.Name(occ[0].branch, *dict),
            "a(b(c,\xCE\xB5),\xCE\xB5(\xCE\xB5,\xCE\xB5))");
  EXPECT_EQ(branches.Name(occ[1].branch, *dict),
            "b(c(\xCE\xB5,\xCE\xB5),\xCE\xB5(\xCE\xB5,\xCE\xB5))");
}

TEST(ExtractBranchesTest, SharedDictionaryAcrossTrees) {
  auto labels = std::make_shared<LabelDictionary>();
  Tree t1 = MakeTree("a{b}", labels);
  Tree t2 = MakeTree("a{b}", labels);
  BranchDictionary branches(2);
  const auto occ1 = ExtractBranches(t1, branches);
  const auto occ2 = ExtractBranches(t2, branches);
  EXPECT_EQ(occ1[0].branch, occ2[0].branch);
  EXPECT_EQ(occ1[1].branch, occ2[1].branch);
  EXPECT_EQ(branches.size(), 2u);  // a(b,ε), b(ε,ε)
}

TEST(ExtractBranchesTest, LemmaThreeOne_NodeAppearsInAtMostTwoBranches) {
  // Lemma 3.1: each node of T occurs in at most two binary branches of
  // B(T): once as a root, at most once as a child. Equivalently, the total
  // number of (branch slot != ε) fillings equals <= 2 per node; we verify by
  // counting non-ε slots across all extracted q=2 keys: each node
  // contributes its own root slot, and appears as left child of its parent
  // XOR as right child of its previous sibling (or in no other branch).
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(79);
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = RandomTree(rng.UniformInt(1, 50), pool, dict, rng);
    BranchDictionary branches(2);
    int non_epsilon_slots = 0;
    for (const BranchOccurrence& occ : ExtractBranches(t, branches)) {
      for (const LabelId l : branches.Key(occ.branch)) {
        if (l != kEpsilonLabel) ++non_epsilon_slots;
      }
    }
    // Root slot per node (n) + every node except the root is someone's left
    // or right child exactly once (n - 1).
    EXPECT_EQ(non_epsilon_slots, 2 * t.size() - 1);
  }
}

TEST(ExtractBranchesTest, QLevelBranchCountEqualsTreeSizeForAllQ) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(83);
  Tree t = RandomTree(40, pool, dict, rng);
  for (int q = 2; q <= 5; ++q) {
    BranchDictionary branches(q);
    EXPECT_EQ(static_cast<int>(ExtractBranches(t, branches).size()),
              t.size());
  }
}

}  // namespace
}  // namespace treesim
