#include "search/clustering.h"

#include <memory>
#include <set>

#include "gtest/gtest.h"
#include "datagen/synthetic_generator.h"
#include "test_util.h"

namespace treesim {
namespace {

using testing::MakeTree;

/// Three well-separated families: different sizes and disjoint label pools.
std::unique_ptr<TreeDatabase> ThreeClusterDb(
    const std::shared_ptr<LabelDictionary>& dict, int per_cluster,
    uint64_t seed) {
  auto db = std::make_unique<TreeDatabase>(dict);
  for (int family = 0; family < 3; ++family) {
    SyntheticParams params;
    params.size_mean = 10 + 12 * family;
    params.size_stddev = 1;
    params.label_count = 4;
    params.seed_count = 1;
    params.decay = 0.04;
    // Distinct label namespaces per family via distinct generators sharing
    // the dictionary but different label prefixes are not supported, so
    // separate by size; sizes 10/22/34 are far apart under edit distance.
    SyntheticGenerator gen(params, dict, seed + static_cast<uint64_t>(family));
    for (Tree& t : gen.GenerateDataset(per_cluster)) db->Add(std::move(t));
  }
  return db;
}

TEST(KMedoidsTest, RecoversWellSeparatedClusters) {
  auto dict = std::make_shared<LabelDictionary>();
  auto db = ThreeClusterDb(dict, 12, 31);
  KMedoidsOptions options;
  options.k = 3;
  Rng rng(17);
  const ClusteringResult r = KMedoids(*db, options, rng);

  ASSERT_EQ(r.medoids.size(), 3u);
  ASSERT_EQ(static_cast<int>(r.assignment.size()), db->size());
  // Every tree of a generated family must share its cluster with its own
  // family (families occupy id ranges [0,12), [12,24), [24,36)).
  for (int family = 0; family < 3; ++family) {
    const int representative = r.assignment[static_cast<size_t>(family * 12)];
    for (int i = family * 12; i < (family + 1) * 12; ++i) {
      EXPECT_EQ(r.assignment[static_cast<size_t>(i)], representative)
          << "tree " << i;
    }
  }
  // And the three families land in three distinct clusters.
  std::set<int> distinct = {r.assignment[0], r.assignment[12],
                            r.assignment[24]};
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(KMedoidsTest, FilteredAndUnfilteredAgree) {
  auto dict = std::make_shared<LabelDictionary>();
  auto db = ThreeClusterDb(dict, 8, 37);
  KMedoidsOptions with_filter;
  with_filter.k = 3;
  with_filter.use_filter = true;
  KMedoidsOptions without_filter = with_filter;
  without_filter.use_filter = false;

  Rng rng1(99);
  Rng rng2(99);
  const ClusteringResult a = KMedoids(*db, with_filter, rng1);
  const ClusteringResult b = KMedoids(*db, without_filter, rng2);
  EXPECT_EQ(a.medoids, b.medoids);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.total_cost, b.total_cost);
  // The filter must actually prune something on separated clusters.
  EXPECT_GT(a.pruned_by_filter, 0);
  EXPECT_LE(a.edit_distance_calls, b.edit_distance_calls);
}

TEST(KMedoidsTest, MedoidsBelongToTheirClusters) {
  auto dict = std::make_shared<LabelDictionary>();
  auto db = ThreeClusterDb(dict, 10, 41);
  KMedoidsOptions options;
  options.k = 4;
  Rng rng(5);
  const ClusteringResult r = KMedoids(*db, options, rng);
  for (size_t c = 0; c < r.medoids.size(); ++c) {
    const int medoid = r.medoids[c];
    EXPECT_EQ(r.assignment[static_cast<size_t>(medoid)], static_cast<int>(c))
        << "medoid of cluster " << c << " assigned elsewhere";
  }
}

TEST(KMedoidsTest, KEqualsOne) {
  auto dict = std::make_shared<LabelDictionary>();
  auto db = ThreeClusterDb(dict, 5, 43);
  KMedoidsOptions options;
  options.k = 1;
  Rng rng(7);
  const ClusteringResult r = KMedoids(*db, options, rng);
  ASSERT_EQ(r.medoids.size(), 1u);
  for (const int a : r.assignment) EXPECT_EQ(a, 0);
  EXPECT_GT(r.total_cost, 0);
}

TEST(KMedoidsTest, KEqualsDatabaseSize) {
  auto dict = std::make_shared<LabelDictionary>();
  auto db = std::make_unique<TreeDatabase>(dict);
  db->Add(MakeTree("a", dict));
  db->Add(MakeTree("b{c}", dict));
  db->Add(MakeTree("d{e f}", dict));
  KMedoidsOptions options;
  options.k = 3;
  Rng rng(11);
  const ClusteringResult r = KMedoids(*db, options, rng);
  EXPECT_EQ(r.total_cost, 0);  // every tree is its own medoid
  std::set<int> medoids(r.medoids.begin(), r.medoids.end());
  EXPECT_EQ(medoids.size(), 3u);
}

TEST(KMedoidsTest, DeterministicGivenSeed) {
  auto dict = std::make_shared<LabelDictionary>();
  auto db = ThreeClusterDb(dict, 8, 47);
  KMedoidsOptions options;
  options.k = 3;
  Rng rng1(123);
  Rng rng2(123);
  const ClusteringResult a = KMedoids(*db, options, rng1);
  const ClusteringResult b = KMedoids(*db, options, rng2);
  EXPECT_EQ(a.medoids, b.medoids);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(KMedoidsDeathTest, InvalidK) {
  auto dict = std::make_shared<LabelDictionary>();
  auto db = std::make_unique<TreeDatabase>(dict);
  db->Add(MakeTree("a", dict));
  KMedoidsOptions options;
  options.k = 2;  // > database size
  Rng rng(1);
  EXPECT_DEATH((void)KMedoids(*db, options, rng), "");
}

}  // namespace
}  // namespace treesim
