// End-to-end checks that the instrumentation wired through the
// filter-and-refine pipeline tells a coherent story: registry deltas around
// real Range/Knn/BatchKnn workloads must agree with the per-query
// QueryStats the engine already returns, respect the pipeline's funnel
// invariants (refined <= filtered <= database size), and render to JSON
// that matches the snapshot accessors. Everything runs sequentially
// (pool = nullptr) so the counters are exactly determined; the thread-pool
// metrics have documented cross-window skew and are deliberately not
// asserted tightly here.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "filters/bibranch_filter.h"
#include "gtest/gtest.h"
#include "search/similarity_search.h"
#include "search/tree_database.h"
#include "test_util.h"
#include "ted/zhang_shasha.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/trace.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::RandomTree;

constexpr int kDbSize = 60;
constexpr int kQueries = 8;
constexpr uint64_t kSeed = 42;

/// Database + engine shared by the cases (built once; the interesting
/// deltas are all DiffSince() windows around the queries).
class ObservabilityE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
    labels_ = std::make_shared<LabelDictionary>();
    const std::vector<LabelId> pool = MakeLabelPool(labels_, 5);
    Rng rng(kSeed);
    db_ = std::make_unique<TreeDatabase>(labels_);
    std::vector<Tree> trees;
    for (int i = 0; i < kDbSize; ++i) {
      trees.push_back(
          RandomTree(3 + static_cast<int>(rng.UniformIndex(20)), pool,
                     labels_, rng));
    }
    db_->AddAll(std::move(trees));
    engine_ = std::make_unique<SimilaritySearch>(
        db_.get(), std::make_unique<BiBranchFilter>());
    for (int i = 0; i < kQueries; ++i) {
      queries_.push_back(db_->tree(static_cast<int>(
          rng.UniformIndex(static_cast<size_t>(db_->size())))));
    }
  }

  std::shared_ptr<LabelDictionary> labels_;
  std::unique_ptr<TreeDatabase> db_;
  std::unique_ptr<SimilaritySearch> engine_;
  std::vector<Tree> queries_;
};

TEST_F(ObservabilityE2eTest, DatabaseGaugeTracksSize) {
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  // Other tests in this binary may have built databases too; the gauge is
  // last-write-wins, and ours wrote last (SetUp ran just now).
  EXPECT_EQ(snap.gauge("db.size"), kDbSize);
  EXPECT_GE(snap.counter("db.trees_added"), kDbSize);
}

TEST_F(ObservabilityE2eTest, RangeCountersAgreeWithQueryStats) {
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  QueryStats total;
  int64_t results = 0;
  for (const Tree& q : queries_) {
    const RangeResult r = engine_->Range(q, /*tau=*/6);
    total += r.stats;
    results += static_cast<int64_t>(r.matches.size());
  }
  const MetricsSnapshot d =
      MetricsRegistry::Global().Snapshot().DiffSince(before);

  EXPECT_EQ(d.counter("search.range.queries"), kQueries);
  // The funnel: refined == candidates for range queries, both bounded by
  // what the filter saw, which is bounded by the database.
  EXPECT_EQ(d.counter("search.range.candidates"), total.candidates);
  EXPECT_EQ(d.counter("search.range.refined"), total.edit_distance_calls);
  EXPECT_EQ(d.counter("search.range.results"), total.results);
  EXPECT_EQ(d.counter("search.range.results"), results);
  EXPECT_LE(d.counter("search.range.refined"),
            d.counter("search.range.candidates"));
  EXPECT_LE(d.counter("search.range.candidates"),
            int64_t{kDbSize} * kQueries);
  // Every refinement is one bounded-TED call (plus any the filter itself
  // issued; BiBranch issues none).
  EXPECT_GE(d.counter("ted.bounded_calls"),
            d.counter("search.range.refined"));

  // Stage latency histograms: one sample per query, microseconds coherent
  // with the wall-clock QueryStats totals (histograms round down per
  // sample, so only the upper bound is safe to assert).
  const MetricsSnapshot::HistogramValue* filter_h =
      d.histogram("search.range.filter_micros");
  const MetricsSnapshot::HistogramValue* refine_h =
      d.histogram("search.range.refine_micros");
  ASSERT_NE(filter_h, nullptr);
  ASSERT_NE(refine_h, nullptr);
  EXPECT_EQ(filter_h->count, kQueries);
  EXPECT_EQ(refine_h->count, kQueries);
  // Generous absolute slack: micros and seconds are read a few statements
  // apart, so a preemption between the reads must not flake the test.
  EXPECT_LE(static_cast<double>(filter_h->sum),
            total.filter_seconds * 1e6 + 1e4 * kQueries);
  EXPECT_LE(static_cast<double>(refine_h->sum),
            total.refine_seconds * 1e6 + 1e4 * kQueries);

  const MetricsSnapshot::HistogramValue* per_query =
      d.histogram("search.range.candidates_per_query");
  ASSERT_NE(per_query, nullptr);
  EXPECT_EQ(per_query->count, kQueries);
  EXPECT_EQ(per_query->sum, total.candidates);
}

TEST_F(ObservabilityE2eTest, KnnCountersAgreeWithQueryStats) {
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  QueryStats total;
  for (const Tree& q : queries_) {
    const KnnResult r = engine_->Knn(q, /*k=*/3);
    total += r.stats;
    ASSERT_EQ(r.neighbors.size(), 3u);
  }
  const MetricsSnapshot d =
      MetricsRegistry::Global().Snapshot().DiffSince(before);

  EXPECT_EQ(d.counter("search.knn.queries"), kQueries);
  // Algorithm 2 computes a bound for every tree, then refines a prefix:
  // refined <= bounds_computed == |D| * queries.
  EXPECT_EQ(d.counter("search.knn.bounds_computed"),
            int64_t{kDbSize} * kQueries);
  EXPECT_EQ(d.counter("search.knn.refined"), total.edit_distance_calls);
  EXPECT_LE(d.counter("search.knn.refined"),
            d.counter("search.knn.bounds_computed"));
  EXPECT_EQ(d.counter("search.knn.results"), total.results);
  EXPECT_GE(d.counter("ted.bounded_calls"),
            d.counter("search.knn.refined"));

  const MetricsSnapshot::HistogramValue* refined_per_query =
      d.histogram("search.knn.refined_per_query");
  ASSERT_NE(refined_per_query, nullptr);
  EXPECT_EQ(refined_per_query->count, kQueries);
  EXPECT_EQ(refined_per_query->sum, total.edit_distance_calls);
  // The early break can never refine fewer than k candidates.
  EXPECT_GE(refined_per_query->sum, int64_t{3} * kQueries);

  // bound_gap samples one gap (exact - bound >= 0 by soundness) per
  // refinement; its count matches the refinement counter.
  const MetricsSnapshot::HistogramValue* gap =
      d.histogram("search.knn.bound_gap");
  ASSERT_NE(gap, nullptr);
  EXPECT_EQ(gap->count, total.edit_distance_calls);
  EXPECT_GE(gap->sum, 0);

  const MetricsSnapshot::HistogramValue* filter_h =
      d.histogram("search.knn.filter_micros");
  const MetricsSnapshot::HistogramValue* refine_h =
      d.histogram("search.knn.refine_micros");
  ASSERT_NE(filter_h, nullptr);
  ASSERT_NE(refine_h, nullptr);
  EXPECT_EQ(filter_h->count, kQueries);
  EXPECT_EQ(refine_h->count, kQueries);
}

TEST_F(ObservabilityE2eTest, BatchKnnMatchesPerQueryAccounting) {
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  const BatchKnnResult batch = engine_->BatchKnn(queries_, /*k=*/2);
  const MetricsSnapshot d =
      MetricsRegistry::Global().Snapshot().DiffSince(before);
  EXPECT_EQ(d.counter("search.batch_knn.queries"), kQueries);
  EXPECT_EQ(d.counter("search.knn.queries"), kQueries);
  EXPECT_EQ(d.counter("search.knn.refined"),
            batch.combined.edit_distance_calls);
}

/// Minimal extraction of `"key":<integer>` from the flat JSON the snapshot
/// renders — enough to cross-validate numbers without a JSON library.
int64_t ExtractJsonInt(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  EXPECT_NE(at, std::string::npos) << "missing key " << key;
  if (at == std::string::npos) return -1;
  size_t i = at + needle.size();
  bool negative = false;
  if (json[i] == '-') {
    negative = true;
    ++i;
  }
  int64_t value = 0;
  while (i < json.size() && json[i] >= '0' && json[i] <= '9') {
    value = value * 10 + (json[i] - '0');
    ++i;
  }
  return negative ? -value : value;
}

TEST_F(ObservabilityE2eTest, JsonDumpMatchesSnapshotAccessors) {
  // Exercise every metric family, then cross-check the CLI's --metrics=json
  // payload (the same ToJson()) against the typed accessors.
  for (const Tree& q : queries_) {
    static_cast<void>(engine_->Range(q, /*tau=*/4));
    static_cast<void>(engine_->Knn(q, /*k=*/2));
  }
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const std::string json = snap.ToJson();

  for (const char* name : {"search.range.queries", "search.knn.queries",
                           "ted.bounded_calls", "db.trees_added"}) {
    EXPECT_EQ(ExtractJsonInt(json, name), snap.counter(name)) << name;
  }
  EXPECT_EQ(ExtractJsonInt(json, "db.size"), snap.gauge("db.size"));

  // Histogram payloads carry count and sum under the metric's object.
  const MetricsSnapshot::HistogramValue* propt =
      snap.histogram("positional.propt");
  ASSERT_NE(propt, nullptr);
  const size_t at = json.find("\"positional.propt\":");
  ASSERT_NE(at, std::string::npos);
  const std::string tail = json.substr(at);
  EXPECT_EQ(ExtractJsonInt(tail, "count"), propt->count);
  EXPECT_EQ(ExtractJsonInt(tail, "sum"), propt->sum);
}

TEST_F(ObservabilityE2eTest, QueryStagesAppearInTrace) {
  Tracer::Global().Disable();
  Tracer::Global().Clear();
  Tracer::Global().Enable();
  static_cast<void>(engine_->Range(queries_[0], /*tau=*/4));
  static_cast<void>(engine_->Knn(queries_[0], /*k=*/2));
  Tracer::Global().Disable();
  const std::vector<TraceEvent> events = Tracer::Global().Collect();

  auto count_spans = [&events](const std::string& name) {
    int n = 0;
    for (const TraceEvent& e : events) {
      if (name == e.name) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_spans("search.range"), 1);
  EXPECT_EQ(count_spans("search.range.filter"), 1);
  EXPECT_EQ(count_spans("search.range.refine"), 1);
  EXPECT_EQ(count_spans("search.knn"), 1);
  EXPECT_EQ(count_spans("search.knn.filter"), 1);
  EXPECT_EQ(count_spans("search.knn.refine"), 1);

  // Stage spans nest inside their query span: depth 1 under depth 0.
  for (const TraceEvent& e : events) {
    const std::string name = e.name;
    if (name == "search.range" || name == "search.knn") {
      EXPECT_EQ(e.depth, 0) << name;
    } else if (name.rfind("search.range.", 0) == 0 ||
               name.rfind("search.knn.", 0) == 0) {
      EXPECT_EQ(e.depth, 1) << name;
    }
  }
  Tracer::Global().Clear();
}

}  // namespace
}  // namespace treesim
