#include "core/binary_tree.h"

#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"
#include "tree/traversal.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;
using BNode = NormalizedBinaryTree::BNode;

std::string LabelOf(const NormalizedBinaryTree& b, const LabelDictionary& d,
                    NormalizedBinaryTree::BNodeId n) {
  return std::string(d.Name(b.nodes()[static_cast<size_t>(n)].label));
}

TEST(NormalizedBinaryTreeTest, SingleNode) {
  Tree t = MakeTree("a");
  const NormalizedBinaryTree b = NormalizedBinaryTree::FromTree(t);
  EXPECT_EQ(b.original_count(), 1);
  EXPECT_EQ(b.epsilon_count(), 2);  // both children padded
  const BNode& root = b.nodes()[0];
  EXPECT_TRUE(b.is_epsilon(root.left));
  EXPECT_TRUE(b.is_epsilon(root.right));
}

TEST(NormalizedBinaryTreeTest, EveryOriginalNodeHasTwoChildren) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(71);
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = RandomTree(rng.UniformInt(1, 60), pool, dict, rng);
    const NormalizedBinaryTree b = NormalizedBinaryTree::FromTree(t);
    EXPECT_EQ(b.original_count(), t.size());
    EXPECT_EQ(b.epsilon_count(), t.size() + 1);
    for (const BNode& n : b.nodes()) {
      if (n.original != kInvalidNode) {
        EXPECT_NE(n.left, NormalizedBinaryTree::kNoChild);
        EXPECT_NE(n.right, NormalizedBinaryTree::kNoChild);
      } else {
        EXPECT_EQ(n.label, kEpsilonLabel);
        EXPECT_EQ(n.left, NormalizedBinaryTree::kNoChild);
        EXPECT_EQ(n.right, NormalizedBinaryTree::kNoChild);
      }
    }
  }
}

TEST(NormalizedBinaryTreeTest, MatchesPaperFig2ForT1) {
  // T1 = a{b{c d} b{c d} e}; Fig. 2 shows B(T1):
  //   a.left = b, a.right = ε; b.left = c, b.right = b';
  //   c.left = ε, c.right = d; ...; b'.right = e.
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b{c d} b{c d} e}", dict);
  const NormalizedBinaryTree b = NormalizedBinaryTree::FromTree(t);
  const auto& nodes = b.nodes();

  const auto root = b.root();
  EXPECT_EQ(LabelOf(b, *dict, root), "a");
  EXPECT_TRUE(b.is_epsilon(nodes[static_cast<size_t>(root)].right));

  const auto b1 = nodes[static_cast<size_t>(root)].left;
  EXPECT_EQ(LabelOf(b, *dict, b1), "b");
  const auto c1 = nodes[static_cast<size_t>(b1)].left;
  const auto b2 = nodes[static_cast<size_t>(b1)].right;
  EXPECT_EQ(LabelOf(b, *dict, c1), "c");
  EXPECT_EQ(LabelOf(b, *dict, b2), "b");

  EXPECT_TRUE(b.is_epsilon(nodes[static_cast<size_t>(c1)].left));
  const auto d1 = nodes[static_cast<size_t>(c1)].right;
  EXPECT_EQ(LabelOf(b, *dict, d1), "d");
  EXPECT_TRUE(b.is_epsilon(nodes[static_cast<size_t>(d1)].left));
  EXPECT_TRUE(b.is_epsilon(nodes[static_cast<size_t>(d1)].right));

  const auto e = nodes[static_cast<size_t>(b2)].right;
  EXPECT_EQ(LabelOf(b, *dict, e), "e");
  EXPECT_TRUE(b.is_epsilon(nodes[static_cast<size_t>(e)].left));
  EXPECT_TRUE(b.is_epsilon(nodes[static_cast<size_t>(e)].right));
}

TEST(NormalizedBinaryTreeTest, LeftChildIsFirstChildRightIsSibling) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 4);
  Rng rng(73);
  Tree t = RandomTree(40, pool, dict, rng);
  const NormalizedBinaryTree b = NormalizedBinaryTree::FromTree(t);
  for (const BNode& n : b.nodes()) {
    if (n.original == kInvalidNode) continue;
    const BNode& left = b.nodes()[static_cast<size_t>(n.left)];
    const BNode& right = b.nodes()[static_cast<size_t>(n.right)];
    EXPECT_EQ(left.original, t.first_child(n.original));
    EXPECT_EQ(right.original, t.next_sibling(n.original));
    EXPECT_EQ(n.label, t.label(n.original));
  }
}

TEST(NormalizedBinaryTreeTest, ToStringRendersStructure) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b}", dict);
  const std::string s = NormalizedBinaryTree::FromTree(t).ToString(*dict);
  // Root a, left child b, epsilons elsewhere.
  EXPECT_NE(s.find("* a"), std::string::npos);
  EXPECT_NE(s.find("L b"), std::string::npos);
  EXPECT_NE(s.find("R \xCE\xB5"), std::string::npos);
}

}  // namespace
}  // namespace treesim
