#include "tree/bracket.h"

#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

TEST(BracketParseTest, SingleNode) {
  Tree t = MakeTree("hello");
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.LabelName(t.root()), "hello");
}

TEST(BracketParseTest, NestedChildren) {
  Tree t = MakeTree("a{b{c d} e}");
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t.LabelName(t.root()), "a");
  const std::vector<NodeId> kids = t.Children(t.root());
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(t.LabelName(kids[0]), "b");
  EXPECT_EQ(t.LabelName(kids[1]), "e");
  EXPECT_EQ(t.Degree(kids[0]), 2);
}

TEST(BracketParseTest, WhitespaceInsensitive) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b{c d} e}", dict);
  Tree b = MakeTree("  a {\n b { c\td }\n e }  ", dict);
  EXPECT_TRUE(a.StructurallyEquals(b));
}

TEST(BracketParseTest, QuotedLabels) {
  Tree t = MakeTree("'a label'{'with {braces}' 'and \\'quotes\\''}");
  EXPECT_EQ(t.LabelName(t.root()), "a label");
  const std::vector<NodeId> kids = t.Children(t.root());
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(t.LabelName(kids[0]), "with {braces}");
  EXPECT_EQ(t.LabelName(kids[1]), "and 'quotes'");
}

TEST(BracketParseTest, EmptyChildListIsLeaf) {
  Tree t = MakeTree("a{}");
  EXPECT_EQ(t.size(), 1);
  EXPECT_TRUE(t.is_leaf(t.root()));
}

TEST(BracketParseTest, ErrorOnEmptyInput) {
  auto dict = std::make_shared<LabelDictionary>();
  EXPECT_FALSE(ParseBracket("", dict).ok());
  EXPECT_FALSE(ParseBracket("   ", dict).ok());
}

TEST(BracketParseTest, ErrorOnUnbalancedBraces) {
  auto dict = std::make_shared<LabelDictionary>();
  EXPECT_FALSE(ParseBracket("a{b", dict).ok());
  EXPECT_FALSE(ParseBracket("a{b}}", dict).ok());
  EXPECT_FALSE(ParseBracket("a}b", dict).ok());
}

TEST(BracketParseTest, ErrorOnTrailingGarbage) {
  auto dict = std::make_shared<LabelDictionary>();
  EXPECT_FALSE(ParseBracket("a b", dict).ok());  // two roots
  EXPECT_FALSE(ParseBracket("a{b} c", dict).ok());
}

TEST(BracketParseTest, ErrorOnUnterminatedQuote) {
  auto dict = std::make_shared<LabelDictionary>();
  EXPECT_FALSE(ParseBracket("'abc", dict).ok());
  EXPECT_FALSE(ParseBracket("''", dict).ok());  // empty label
}

TEST(BracketParseTest, ErrorOnNullDictionary) {
  EXPECT_FALSE(ParseBracket("a", nullptr).ok());
}

TEST(BracketWriteTest, CanonicalForm) {
  Tree t = MakeTree("a{b{c d} e}");
  EXPECT_EQ(ToBracket(t), "a{b{c d} e}");
}

TEST(BracketWriteTest, QuotesWhenNeeded) {
  auto dict = std::make_shared<LabelDictionary>();
  TreeBuilder b(dict);
  const NodeId root = b.AddRoot("has space");
  b.AddChild(root, "ok");
  Tree t = std::move(b).Build();
  EXPECT_EQ(ToBracket(t), "'has space'{ok}");
}

TEST(BracketWriteTest, EmptyTree) {
  Tree t;
  EXPECT_EQ(ToBracket(t), "");
}

TEST(BracketRoundTripTest, RandomTrees) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 5);
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    Tree t = RandomTree(rng.UniformInt(1, 80), pool, dict, rng);
    Tree back = MakeTree(ToBracket(t), dict);
    EXPECT_TRUE(t.StructurallyEquals(back)) << ToBracket(t);
  }
}

TEST(BracketRoundTripTest, AwkwardLabels) {
  auto dict = std::make_shared<LabelDictionary>();
  TreeBuilder b(dict);
  const NodeId root = b.AddRoot("a'b\\c");
  b.AddChild(root, "{x}");
  b.AddChild(root, " ");
  Tree t = std::move(b).Build();
  Tree back = MakeTree(ToBracket(t), dict);
  EXPECT_TRUE(t.StructurallyEquals(back)) << ToBracket(t);
}

}  // namespace
}  // namespace treesim
