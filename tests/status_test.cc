#include "util/status.h"

#include <string>

#include "gtest/gtest.h"

namespace treesim {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad tree");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad tree");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad tree");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "UNIMPLEMENTED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.ok());
  const std::string moved = std::move(v).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  TREESIM_ASSIGN_OR_RETURN(const int h, Half(x));
  return Half(h);
}

Status CheckEven(int x) {
  TREESIM_RETURN_IF_ERROR(Half(x).status());
  return Status::Ok();
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  EXPECT_TRUE(Quarter(8).ok());
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(5).status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckEven(4).ok());
  EXPECT_FALSE(CheckEven(3).ok());
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> v = Status::Internal("boom");
  EXPECT_DEATH({ (void)v.value(); }, "boom");
}

}  // namespace
}  // namespace treesim
