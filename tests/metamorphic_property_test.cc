// Metamorphic properties of the distance stack on seeded random trees:
// relations the paper proves (Theorems 3.2/3.3, Propositions 4.1/4.2,
// Definition 6 monotonicity) must hold on EVERY input, so instead of golden
// values we sweep hundreds of random pairs and check the relations
// themselves. Any violation is a real soundness bug — these are exactly the
// properties the filter-and-refine engine's correctness rests on.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/binary_branch.h"
#include "core/branch_profile.h"
#include "core/positional.h"
#include "gtest/gtest.h"
#include "ted/bounded_ted.h"
#include "ted/cost_model.h"
#include "ted/zhang_shasha.h"
#include "test_util.h"
#include "util/random.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::RandomTree;

constexpr int kPairs = 200;
constexpr int kMaxSize = 24;
constexpr uint64_t kSeed = 20050614;

/// One random tree pair plus everything the properties compare.
struct PairFixture {
  std::shared_ptr<LabelDictionary> labels;
  std::vector<Tree> trees;  // 2 per pair (3 for the triangle fixture)
};

Tree DrawTree(const std::shared_ptr<LabelDictionary>& labels,
              const std::vector<LabelId>& pool, Rng& rng) {
  const int size = 1 + static_cast<int>(rng.UniformIndex(kMaxSize));
  return RandomTree(size, pool, labels, rng);
}

class MetamorphicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    labels_ = std::make_shared<LabelDictionary>();
    pool_ = MakeLabelPool(labels_, 6);
    rng_ = std::make_unique<Rng>(kSeed);
  }

  Tree Draw() { return DrawTree(labels_, pool_, *rng_); }

  std::shared_ptr<LabelDictionary> labels_;
  std::vector<LabelId> pool_;
  std::unique_ptr<Rng> rng_;
};

TEST_F(MetamorphicTest, IdentityAndSymmetryOfBranchDistances) {
  BranchDictionary dict(2);
  for (int i = 0; i < kPairs; ++i) {
    const Tree t1 = Draw();
    const Tree t2 = Draw();
    const BranchProfile p1 = BranchProfile::FromTree(t1, dict);
    const BranchProfile p2 = BranchProfile::FromTree(t2, dict);
    // BDist(T, T) == 0 and PosBDist(T, T, pr) == 0 for every pr.
    EXPECT_EQ(BranchDistance(p1, p1), 0);
    EXPECT_EQ(PositionalBranchDistance(p1, p1, 0, MatchingMode::kExact), 0);
    EXPECT_EQ(PositionalBranchDistance(p1, p1, 2, MatchingMode::kGreedy), 0);
    // L1 distance and matchings are symmetric in the two profiles.
    EXPECT_EQ(BranchDistance(p1, p2), BranchDistance(p2, p1));
    for (const int pr : {0, 1, 3}) {
      EXPECT_EQ(PositionalBranchDistance(p1, p2, pr, MatchingMode::kExact),
                PositionalBranchDistance(p2, p1, pr, MatchingMode::kExact));
    }
    EXPECT_EQ(OptimisticBound(p1, p2), OptimisticBound(p2, p1));
  }
}

TEST_F(MetamorphicTest, EditDistanceIsAMetricOnSamples) {
  for (int i = 0; i < kPairs / 2; ++i) {
    const Tree a = Draw();
    const Tree b = Draw();
    const Tree c = Draw();
    const int ab = TreeEditDistance(a, b);
    const int ba = TreeEditDistance(b, a);
    const int bc = TreeEditDistance(b, c);
    const int ac = TreeEditDistance(a, c);
    EXPECT_EQ(TreeEditDistance(a, a), 0);
    EXPECT_EQ(ab, ba);
    EXPECT_GE(ab, 0);
    // Identity of indiscernibles, one direction: distance 0 on distinct
    // sizes is impossible (each size difference costs >= 1 operation).
    if (a.size() != b.size()) {
      EXPECT_GT(ab, 0);
    }
    // Triangle inequality — scripts compose.
    EXPECT_LE(ac, ab + bc) << "triangle violated at sample " << i;
    // Size difference is a trivial lower bound.
    EXPECT_GE(ab, std::abs(a.size() - b.size()));
  }
}

TEST_F(MetamorphicTest, BranchLowerBoundNeverExceedsEditDistance) {
  // Theorem 3.2/3.3: ceil(BDist_q / (4(q-1)+1)) <= EDist, for q = 2 and 3.
  for (const int q : {2, 3}) {
    BranchDictionary dict(q);
    Rng rng(kSeed + static_cast<uint64_t>(q));
    for (int i = 0; i < kPairs; ++i) {
      const Tree t1 = DrawTree(labels_, pool_, rng);
      const Tree t2 = DrawTree(labels_, pool_, rng);
      const BranchProfile p1 = BranchProfile::FromTree(t1, dict);
      const BranchProfile p2 = BranchProfile::FromTree(t2, dict);
      ASSERT_EQ(p1.factor, dict.edit_distance_factor());
      const int bound = BranchDistanceLowerBound(p1, p2);
      const int exact = TreeEditDistance(t1, t2);
      EXPECT_LE(bound, exact)
          << "q=" << q << " BDist=" << BranchDistance(p1, p2)
          << " |T1|=" << t1.size() << " |T2|=" << t2.size();
    }
  }
}

TEST_F(MetamorphicTest, PositionalDistanceIsMonotoneInRadius) {
  BranchDictionary dict(2);
  for (int i = 0; i < kPairs; ++i) {
    const Tree t1 = Draw();
    const Tree t2 = Draw();
    const BranchProfile p1 = BranchProfile::FromTree(t1, dict);
    const BranchProfile p2 = BranchProfile::FromTree(t2, dict);
    const int pr_max = std::max(t1.size(), t2.size());
    int64_t previous = -1;
    for (int pr = 0; pr <= pr_max; ++pr) {
      const int64_t d =
          PositionalBranchDistance(p1, p2, pr, MatchingMode::kExact);
      if (previous >= 0) {
        EXPECT_LE(d, previous) << "PosBDist increased at pr=" << pr;
      }
      previous = d;
    }
    // Definition 6: with the positional constraint relaxed past every
    // position difference, PosBDist degenerates to plain BDist.
    EXPECT_EQ(previous, BranchDistance(p1, p2));
  }
}

TEST_F(MetamorphicTest, GreedyMatchingNeverTightensExact) {
  // kGreedy computes a matching at least as large as kExact, so its
  // PosBDist is never larger — the sound direction for a lower bound.
  BranchDictionary dict(2);
  for (int i = 0; i < kPairs; ++i) {
    const Tree t1 = Draw();
    const Tree t2 = Draw();
    const BranchProfile p1 = BranchProfile::FromTree(t1, dict);
    const BranchProfile p2 = BranchProfile::FromTree(t2, dict);
    for (const int pr : {0, 1, 2, 4}) {
      EXPECT_LE(PositionalBranchDistance(p1, p2, pr, MatchingMode::kGreedy),
                PositionalBranchDistance(p1, p2, pr, MatchingMode::kExact))
          << "pr=" << pr;
    }
  }
}

TEST_F(MetamorphicTest, OptimisticBoundIsSoundAndDominates) {
  // Proposition 4.2: propt <= EDist; and propt dominates both the
  // non-positional bound and the size-difference bound by construction.
  BranchDictionary dict(2);
  for (int i = 0; i < kPairs; ++i) {
    const Tree t1 = Draw();
    const Tree t2 = Draw();
    const BranchProfile p1 = BranchProfile::FromTree(t1, dict);
    const BranchProfile p2 = BranchProfile::FromTree(t2, dict);
    const int exact = TreeEditDistance(t1, t2);
    for (const MatchingMode mode :
         {MatchingMode::kExact, MatchingMode::kGreedy, MatchingMode::kAuto}) {
      const int propt = OptimisticBound(p1, p2, mode);
      EXPECT_LE(propt, exact);
      EXPECT_GE(propt, BranchDistanceLowerBound(p1, p2));
      EXPECT_GE(propt, std::abs(t1.size() - t2.size()));
    }
  }
}

TEST_F(MetamorphicTest, RangeFilterNeverPrunesTrueResults) {
  // Section 4.3 completeness: EDist <= tau implies the filter passes. (The
  // converse would be tightness, which the filter does not promise.)
  BranchDictionary dict(2);
  for (int i = 0; i < kPairs; ++i) {
    const Tree t1 = Draw();
    const Tree t2 = Draw();
    const BranchProfile p1 = BranchProfile::FromTree(t1, dict);
    const BranchProfile p2 = BranchProfile::FromTree(t2, dict);
    const int exact = TreeEditDistance(t1, t2);
    for (const int tau : {exact, exact + 1, exact + 5}) {
      EXPECT_TRUE(RangeFilterPasses(p1, p2, tau, MatchingMode::kExact))
          << "EDist=" << exact << " tau=" << tau;
      EXPECT_TRUE(RangeFilterPasses(p1, p2, tau, MatchingMode::kGreedy))
          << "EDist=" << exact << " tau=" << tau;
    }
    // Consistency with the binary search: propt <= tau iff the single
    // evaluation passes.
    const int propt = OptimisticBound(p1, p2, MatchingMode::kGreedy);
    EXPECT_TRUE(RangeFilterPasses(p1, p2, propt, MatchingMode::kGreedy));
    if (propt > 0) {
      EXPECT_FALSE(RangeFilterPasses(p1, p2, propt - 1, MatchingMode::kGreedy))
          << "propt=" << propt;
    }
  }
}

TEST_F(MetamorphicTest, BoundedVerifierContract) {
  // The crisp unit-cost shape the call sites rely on: for every tau >= 0
  // the bounded verifier returns exactly min(EDist, tau + 1) — not just
  // "something above tau" — and 0 for negative tau (where every distance
  // exceeds the threshold).
  for (int i = 0; i < kPairs; ++i) {
    const Tree t1 = Draw();
    const Tree t2 = Draw();
    const int exact = TreeEditDistance(t1, t2);
    for (const int tau :
         {0, 1, exact - 1, exact, exact + 1, exact + 7,
          t1.size() + t2.size() + 3, std::numeric_limits<int>::max()}) {
      if (tau < 0) {
        EXPECT_EQ(BoundedTreeEditDistance(t1, t2, tau), 0);
        continue;
      }
      const int expected =
          tau < exact ? tau + 1 : exact;  // min(exact, tau + 1), no overflow
      EXPECT_EQ(BoundedTreeEditDistance(t1, t2, tau), expected)
          << "tau=" << tau << " EDist=" << exact;
    }
  }
}

TEST_F(MetamorphicTest, BoundedVerifierIsMonotoneInTau) {
  // min(EDist, tau + 1) is nondecreasing in tau and freezes at EDist once
  // the distance fits — so raising a search threshold can only reveal
  // results, never change already-verified ones.
  for (int i = 0; i < kPairs / 4; ++i) {
    const Tree t1 = Draw();
    const Tree t2 = Draw();
    const int tau_max = t1.size() + t2.size() + 1;
    int previous = 0;  // tau = -1 answer
    for (int tau = 0; tau <= tau_max; ++tau) {
      const int b = BoundedTreeEditDistance(t1, t2, tau);
      EXPECT_GE(b, previous) << "answer shrank at tau=" << tau;
      if (previous <= tau - 1 && tau > 0) {
        EXPECT_EQ(b, previous) << "verified answer changed at tau=" << tau;
      }
      previous = b;
    }
    EXPECT_EQ(previous, TreeEditDistance(t1, t2));
  }
}

TEST_F(MetamorphicTest, LowerBoundRejectionImpliesBoundedRejection) {
  // The pipeline's consistency: when the filter's lower bound already
  // exceeds a threshold, the bounded verifier must agree that the distance
  // does too (otherwise filter and verifier could disagree on membership).
  BranchDictionary dict(2);
  for (int i = 0; i < kPairs; ++i) {
    const Tree t1 = Draw();
    const Tree t2 = Draw();
    const BranchProfile p1 = BranchProfile::FromTree(t1, dict);
    const BranchProfile p2 = BranchProfile::FromTree(t2, dict);
    const int bound = BranchDistanceLowerBound(p1, p2);
    if (bound > 0) {
      EXPECT_GT(BoundedTreeEditDistance(t1, t2, bound - 1), bound - 1)
          << "bound=" << bound;
    }
  }
}

/// Non-uniform costs exercising the weighted band scaling: c_min comes
/// from the cheapest operation (relabel), not insert/delete.
class SkewedCosts final : public CostModel {
 public:
  double Relabel(LabelId from, LabelId to) const override {
    return from == to ? 0.0 : 0.5;
  }
  double Insert(LabelId /*label*/) const override { return 1.5; }
  double Delete(LabelId /*label*/) const override { return 2.0; }
  double MinOperationCost() const override { return 0.5; }
};

TEST_F(MetamorphicTest, BoundedWeightedMatchesUnboundedBitwise) {
  // At tau = exact and tau = infinity the weighted verifier must return the
  // exact distance BIT-identically (EXPECT_EQ on doubles, deliberately):
  // the rewired weighted search paths promise byte-identical results, which
  // only holds if no floating-point addition is reordered. Below the exact
  // distance the answer is +infinity; negative and NaN thresholds reject
  // everything.
  const SkewedCosts costs;
  const double inf = std::numeric_limits<double>::infinity();
  for (int i = 0; i < kPairs / 2; ++i) {
    const TedTree v1 = TedTree::FromTree(Draw());
    const TedTree v2 = TedTree::FromTree(Draw());
    const double exact = TreeEditDistanceWeighted(v1, v2, costs);
    EXPECT_EQ(BoundedTreeEditDistanceWeighted(v1, v2, exact, costs), exact);
    EXPECT_EQ(BoundedTreeEditDistanceWeighted(v1, v2, inf, costs), exact);
    EXPECT_EQ(BoundedTreeEditDistanceWeighted(v1, v2, exact + 0.25, costs),
              exact);
    if (exact > 0.0) {
      // Costs are multiples of 0.5 (exactly representable), so exact - 0.125
      // is a threshold strictly below the distance. The rejection value is
      // +infinity from the banded kernel but the exact distance when the
      // band covers everything and the call delegates — either way > tau.
      EXPECT_GT(BoundedTreeEditDistanceWeighted(v1, v2, exact - 0.125, costs),
                exact - 0.125);
    }
    EXPECT_EQ(BoundedTreeEditDistanceWeighted(v1, v2, -1.0, costs), inf);
    EXPECT_EQ(BoundedTreeEditDistanceWeighted(
                  v1, v2, std::numeric_limits<double>::quiet_NaN(), costs),
              inf);
  }
}

TEST_F(MetamorphicTest, WeightedScaledUnitBoundIsSound) {
  // The weighted pipeline's pruning rule (search/similarity_search.cc): a
  // unit lower bound of b implies weighted distance >= c_min * b. The
  // bounded weighted verifier must agree with every threshold that rule
  // prunes at.
  BranchDictionary dict(2);
  const SkewedCosts costs;
  const double c_min = costs.MinOperationCost();
  for (int i = 0; i < kPairs; ++i) {
    const Tree t1 = Draw();
    const Tree t2 = Draw();
    const BranchProfile p1 = BranchProfile::FromTree(t1, dict);
    const BranchProfile p2 = BranchProfile::FromTree(t2, dict);
    const TedTree v1 = TedTree::FromTree(t1);
    const TedTree v2 = TedTree::FromTree(t2);
    const int bound = BranchDistanceLowerBound(p1, p2);
    const double exact = TreeEditDistanceWeighted(v1, v2, costs);
    EXPECT_GE(exact, c_min * static_cast<double>(bound) - 1e-9);
    if (bound > 0) {
      const double tau = c_min * static_cast<double>(bound) - 0.125;
      EXPECT_GT(BoundedTreeEditDistanceWeighted(v1, v2, tau, costs), tau)
          << "bound=" << bound;
    }
  }
}

}  // namespace
}  // namespace treesim
