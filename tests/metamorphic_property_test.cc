// Metamorphic properties of the distance stack on seeded random trees:
// relations the paper proves (Theorems 3.2/3.3, Propositions 4.1/4.2,
// Definition 6 monotonicity) must hold on EVERY input, so instead of golden
// values we sweep hundreds of random pairs and check the relations
// themselves. Any violation is a real soundness bug — these are exactly the
// properties the filter-and-refine engine's correctness rests on.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/binary_branch.h"
#include "core/branch_profile.h"
#include "core/positional.h"
#include "gtest/gtest.h"
#include "ted/zhang_shasha.h"
#include "test_util.h"
#include "util/random.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::RandomTree;

constexpr int kPairs = 200;
constexpr int kMaxSize = 24;
constexpr uint64_t kSeed = 20050614;

/// One random tree pair plus everything the properties compare.
struct PairFixture {
  std::shared_ptr<LabelDictionary> labels;
  std::vector<Tree> trees;  // 2 per pair (3 for the triangle fixture)
};

Tree DrawTree(const std::shared_ptr<LabelDictionary>& labels,
              const std::vector<LabelId>& pool, Rng& rng) {
  const int size = 1 + static_cast<int>(rng.UniformIndex(kMaxSize));
  return RandomTree(size, pool, labels, rng);
}

class MetamorphicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    labels_ = std::make_shared<LabelDictionary>();
    pool_ = MakeLabelPool(labels_, 6);
    rng_ = std::make_unique<Rng>(kSeed);
  }

  Tree Draw() { return DrawTree(labels_, pool_, *rng_); }

  std::shared_ptr<LabelDictionary> labels_;
  std::vector<LabelId> pool_;
  std::unique_ptr<Rng> rng_;
};

TEST_F(MetamorphicTest, IdentityAndSymmetryOfBranchDistances) {
  BranchDictionary dict(2);
  for (int i = 0; i < kPairs; ++i) {
    const Tree t1 = Draw();
    const Tree t2 = Draw();
    const BranchProfile p1 = BranchProfile::FromTree(t1, dict);
    const BranchProfile p2 = BranchProfile::FromTree(t2, dict);
    // BDist(T, T) == 0 and PosBDist(T, T, pr) == 0 for every pr.
    EXPECT_EQ(BranchDistance(p1, p1), 0);
    EXPECT_EQ(PositionalBranchDistance(p1, p1, 0, MatchingMode::kExact), 0);
    EXPECT_EQ(PositionalBranchDistance(p1, p1, 2, MatchingMode::kGreedy), 0);
    // L1 distance and matchings are symmetric in the two profiles.
    EXPECT_EQ(BranchDistance(p1, p2), BranchDistance(p2, p1));
    for (const int pr : {0, 1, 3}) {
      EXPECT_EQ(PositionalBranchDistance(p1, p2, pr, MatchingMode::kExact),
                PositionalBranchDistance(p2, p1, pr, MatchingMode::kExact));
    }
    EXPECT_EQ(OptimisticBound(p1, p2), OptimisticBound(p2, p1));
  }
}

TEST_F(MetamorphicTest, EditDistanceIsAMetricOnSamples) {
  for (int i = 0; i < kPairs / 2; ++i) {
    const Tree a = Draw();
    const Tree b = Draw();
    const Tree c = Draw();
    const int ab = TreeEditDistance(a, b);
    const int ba = TreeEditDistance(b, a);
    const int bc = TreeEditDistance(b, c);
    const int ac = TreeEditDistance(a, c);
    EXPECT_EQ(TreeEditDistance(a, a), 0);
    EXPECT_EQ(ab, ba);
    EXPECT_GE(ab, 0);
    // Identity of indiscernibles, one direction: distance 0 on distinct
    // sizes is impossible (each size difference costs >= 1 operation).
    if (a.size() != b.size()) {
      EXPECT_GT(ab, 0);
    }
    // Triangle inequality — scripts compose.
    EXPECT_LE(ac, ab + bc) << "triangle violated at sample " << i;
    // Size difference is a trivial lower bound.
    EXPECT_GE(ab, std::abs(a.size() - b.size()));
  }
}

TEST_F(MetamorphicTest, BranchLowerBoundNeverExceedsEditDistance) {
  // Theorem 3.2/3.3: ceil(BDist_q / (4(q-1)+1)) <= EDist, for q = 2 and 3.
  for (const int q : {2, 3}) {
    BranchDictionary dict(q);
    Rng rng(kSeed + static_cast<uint64_t>(q));
    for (int i = 0; i < kPairs; ++i) {
      const Tree t1 = DrawTree(labels_, pool_, rng);
      const Tree t2 = DrawTree(labels_, pool_, rng);
      const BranchProfile p1 = BranchProfile::FromTree(t1, dict);
      const BranchProfile p2 = BranchProfile::FromTree(t2, dict);
      ASSERT_EQ(p1.factor, dict.edit_distance_factor());
      const int bound = BranchDistanceLowerBound(p1, p2);
      const int exact = TreeEditDistance(t1, t2);
      EXPECT_LE(bound, exact)
          << "q=" << q << " BDist=" << BranchDistance(p1, p2)
          << " |T1|=" << t1.size() << " |T2|=" << t2.size();
    }
  }
}

TEST_F(MetamorphicTest, PositionalDistanceIsMonotoneInRadius) {
  BranchDictionary dict(2);
  for (int i = 0; i < kPairs; ++i) {
    const Tree t1 = Draw();
    const Tree t2 = Draw();
    const BranchProfile p1 = BranchProfile::FromTree(t1, dict);
    const BranchProfile p2 = BranchProfile::FromTree(t2, dict);
    const int pr_max = std::max(t1.size(), t2.size());
    int64_t previous = -1;
    for (int pr = 0; pr <= pr_max; ++pr) {
      const int64_t d =
          PositionalBranchDistance(p1, p2, pr, MatchingMode::kExact);
      if (previous >= 0) {
        EXPECT_LE(d, previous) << "PosBDist increased at pr=" << pr;
      }
      previous = d;
    }
    // Definition 6: with the positional constraint relaxed past every
    // position difference, PosBDist degenerates to plain BDist.
    EXPECT_EQ(previous, BranchDistance(p1, p2));
  }
}

TEST_F(MetamorphicTest, GreedyMatchingNeverTightensExact) {
  // kGreedy computes a matching at least as large as kExact, so its
  // PosBDist is never larger — the sound direction for a lower bound.
  BranchDictionary dict(2);
  for (int i = 0; i < kPairs; ++i) {
    const Tree t1 = Draw();
    const Tree t2 = Draw();
    const BranchProfile p1 = BranchProfile::FromTree(t1, dict);
    const BranchProfile p2 = BranchProfile::FromTree(t2, dict);
    for (const int pr : {0, 1, 2, 4}) {
      EXPECT_LE(PositionalBranchDistance(p1, p2, pr, MatchingMode::kGreedy),
                PositionalBranchDistance(p1, p2, pr, MatchingMode::kExact))
          << "pr=" << pr;
    }
  }
}

TEST_F(MetamorphicTest, OptimisticBoundIsSoundAndDominates) {
  // Proposition 4.2: propt <= EDist; and propt dominates both the
  // non-positional bound and the size-difference bound by construction.
  BranchDictionary dict(2);
  for (int i = 0; i < kPairs; ++i) {
    const Tree t1 = Draw();
    const Tree t2 = Draw();
    const BranchProfile p1 = BranchProfile::FromTree(t1, dict);
    const BranchProfile p2 = BranchProfile::FromTree(t2, dict);
    const int exact = TreeEditDistance(t1, t2);
    for (const MatchingMode mode :
         {MatchingMode::kExact, MatchingMode::kGreedy, MatchingMode::kAuto}) {
      const int propt = OptimisticBound(p1, p2, mode);
      EXPECT_LE(propt, exact);
      EXPECT_GE(propt, BranchDistanceLowerBound(p1, p2));
      EXPECT_GE(propt, std::abs(t1.size() - t2.size()));
    }
  }
}

TEST_F(MetamorphicTest, RangeFilterNeverPrunesTrueResults) {
  // Section 4.3 completeness: EDist <= tau implies the filter passes. (The
  // converse would be tightness, which the filter does not promise.)
  BranchDictionary dict(2);
  for (int i = 0; i < kPairs; ++i) {
    const Tree t1 = Draw();
    const Tree t2 = Draw();
    const BranchProfile p1 = BranchProfile::FromTree(t1, dict);
    const BranchProfile p2 = BranchProfile::FromTree(t2, dict);
    const int exact = TreeEditDistance(t1, t2);
    for (const int tau : {exact, exact + 1, exact + 5}) {
      EXPECT_TRUE(RangeFilterPasses(p1, p2, tau, MatchingMode::kExact))
          << "EDist=" << exact << " tau=" << tau;
      EXPECT_TRUE(RangeFilterPasses(p1, p2, tau, MatchingMode::kGreedy))
          << "EDist=" << exact << " tau=" << tau;
    }
    // Consistency with the binary search: propt <= tau iff the single
    // evaluation passes.
    const int propt = OptimisticBound(p1, p2, MatchingMode::kGreedy);
    EXPECT_TRUE(RangeFilterPasses(p1, p2, propt, MatchingMode::kGreedy));
    if (propt > 0) {
      EXPECT_FALSE(RangeFilterPasses(p1, p2, propt - 1, MatchingMode::kGreedy))
          << "propt=" << propt;
    }
  }
}

}  // namespace
}  // namespace treesim
