// Unit tests for query-context propagation (util/query_context.h): id
// allocation, RAII nesting, capture at ThreadPool::Schedule/ParallelFor
// submission, and the determinism guarantee that id allocation does not
// depend on the pool size. The context is process-global state but purely
// thread-local, so the tests need no reset hook.
#include "util/query_context.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace treesim {
namespace {

TEST(QueryContextTest, NoContextByDefault) {
  EXPECT_EQ(CurrentQueryContext().query_id, 0);
  EXPECT_STREQ(CurrentQueryContext().tag, "");
}

TEST(QueryContextTest, AllocateIsMonotonicAndUnique) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  const int64_t first = AllocateQueryId();
  EXPECT_GE(first, 1);  // 0 is reserved for "no context"
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(AllocateQueryId(), first + i);
  }
}

TEST(QueryContextTest, ScopesNestAndRestore) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  {
    const ScopedQueryContext outer("outer");
    EXPECT_GT(outer.query_id(), 0);
    EXPECT_EQ(CurrentQueryContext().query_id, outer.query_id());
    EXPECT_STREQ(CurrentQueryContext().tag, "outer");
    {
      const ScopedQueryContext inner("inner");
      EXPECT_GT(inner.query_id(), outer.query_id());
      EXPECT_EQ(CurrentQueryContext().query_id, inner.query_id());
      EXPECT_STREQ(CurrentQueryContext().tag, "inner");
    }
    // The inner scope restored the outer context, not "no context".
    EXPECT_EQ(CurrentQueryContext().query_id, outer.query_id());
    EXPECT_STREQ(CurrentQueryContext().tag, "outer");
  }
  EXPECT_EQ(CurrentQueryContext().query_id, 0);
}

TEST(QueryContextTest, AdoptingScopeKeepsTheGivenId) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  QueryContext ctx;
  ctx.query_id = 12345;
  ctx.tag = "adopted";
  {
    const ScopedQueryContext scope(ctx);
    EXPECT_EQ(scope.query_id(), 12345);
    EXPECT_EQ(CurrentQueryContext().query_id, 12345);
  }
  EXPECT_EQ(CurrentQueryContext().query_id, 0);
}

TEST(QueryContextTest, ScheduleCapturesSubmitterContext) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  std::atomic<int64_t> seen{-1};
  int64_t submitted = 0;
  {
    auto pool = std::make_unique<ThreadPool>(2);
    {
      const ScopedQueryContext qctx("schedule_test");
      submitted = qctx.query_id();
      pool->Schedule(
          [&seen] { seen = CurrentQueryContext().query_id; });
    }
    // The submitting scope is already closed; the capture taken at
    // Schedule() time must still deliver the id to the worker.
    pool.reset();  // drains the queue and joins
  }
  EXPECT_EQ(seen.load(), submitted);
}

TEST(QueryContextTest, ScheduleWithoutContextStaysBare) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  std::atomic<int64_t> seen{-1};
  {
    auto pool = std::make_unique<ThreadPool>(2);
    pool->Schedule([&seen] { seen = CurrentQueryContext().query_id; });
    pool.reset();
  }
  EXPECT_EQ(seen.load(), 0);
}

TEST(QueryContextTest, ParallelForPropagatesToEveryIteration) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  constexpr int64_t kN = 64;
  for (const int threads : {1, 8}) {
    ThreadPool pool(threads);
    std::vector<int64_t> observed(kN, -1);
    const ScopedQueryContext qctx("parallel_for_test");
    pool.ParallelFor(kN, [&observed](int64_t i) {
      observed[static_cast<size_t>(i)] = CurrentQueryContext().query_id;
    });
    for (int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(observed[static_cast<size_t>(i)], qctx.query_id())
          << "iteration " << i << " with " << threads << " threads";
    }
  }
}

/// Runs a fixed sequence of "queries" (context open + fan-out) and returns
/// the observed worker-side ids relative to the first allocated id.
std::vector<int64_t> RunFixedQuerySequence(int threads) {
  ThreadPool pool(threads);
  std::vector<int64_t> relative_ids;
  int64_t base = -1;
  for (int q = 0; q < 5; ++q) {
    const ScopedQueryContext qctx("determinism_test");
    if (base < 0) base = qctx.query_id();
    std::atomic<int64_t> worker_seen{-1};
    pool.ParallelFor(16, [&worker_seen](int64_t) {
      worker_seen = CurrentQueryContext().query_id;
    });
    EXPECT_EQ(worker_seen.load(), qctx.query_id());
    relative_ids.push_back(qctx.query_id() - base);
  }
  return relative_ids;
}

TEST(QueryContextTest, IdAssignmentIsDeterministicAcrossPoolSizes) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  // Ids are allocated on the calling thread before any fan-out, so the
  // query→id mapping for a fixed call sequence cannot depend on how many
  // workers execute it.
  EXPECT_EQ(RunFixedQuerySequence(1), RunFixedQuerySequence(8));
}

TEST(QueryContextTest, ContextIsThreadLocal) {
  if (!kMetricsEnabled) GTEST_SKIP() << "TREESIM_METRICS=OFF";
  const ScopedQueryContext qctx("main_thread");
  std::atomic<int64_t> other_thread_id{-1};
  std::thread t([&other_thread_id] {
    other_thread_id = CurrentQueryContext().query_id;
  });
  t.join();
  EXPECT_EQ(other_thread_id.load(), 0);  // plain threads inherit nothing
  EXPECT_EQ(CurrentQueryContext().query_id, qctx.query_id());
}

}  // namespace
}  // namespace treesim
