#include "tree/forest_io.h"

#include <cstdio>
#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"
#include "tree/bracket.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

TEST(ForestIoTest, StringRoundTrip) {
  auto dict = std::make_shared<LabelDictionary>();
  std::vector<Tree> forest = {MakeTree("a{b c}", dict),
                              MakeTree("x{'two words'}", dict),
                              MakeTree("single", dict)};
  const std::string text = ForestToString(forest);
  auto dict2 = std::make_shared<LabelDictionary>();
  StatusOr<std::vector<Tree>> back = ForestFromString(text, dict2);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), forest.size());
  for (size_t i = 0; i < forest.size(); ++i) {
    EXPECT_EQ(ToBracket((*back)[i]), ToBracket(forest[i]));
  }
}

TEST(ForestIoTest, CommentsAndBlankLinesIgnored) {
  auto dict = std::make_shared<LabelDictionary>();
  StatusOr<std::vector<Tree>> forest = ForestFromString(
      "# header\n\n  a{b}\n\t\n# trailing comment\nc\n", dict);
  ASSERT_TRUE(forest.ok()) << forest.status();
  ASSERT_EQ(forest->size(), 2u);
  EXPECT_EQ(ToBracket((*forest)[0]), "a{b}");
  EXPECT_EQ(ToBracket((*forest)[1]), "c");
}

TEST(ForestIoTest, WindowsLineEndings) {
  auto dict = std::make_shared<LabelDictionary>();
  StatusOr<std::vector<Tree>> forest =
      ForestFromString("a{b}\r\nc\r\n", dict);
  ASSERT_TRUE(forest.ok()) << forest.status();
  EXPECT_EQ(forest->size(), 2u);
}

TEST(ForestIoTest, ParseErrorReportsLineNumber) {
  auto dict = std::make_shared<LabelDictionary>();
  StatusOr<std::vector<Tree>> forest =
      ForestFromString("a{b}\nbroken{\n", dict);
  ASSERT_FALSE(forest.ok());
  EXPECT_NE(forest.status().message().find("line 2"), std::string::npos)
      << forest.status();
}

TEST(ForestIoTest, EmptyInputYieldsEmptyForest) {
  auto dict = std::make_shared<LabelDictionary>();
  StatusOr<std::vector<Tree>> forest = ForestFromString("", dict);
  ASSERT_TRUE(forest.ok());
  EXPECT_TRUE(forest->empty());
}

TEST(ForestIoTest, NullDictionaryRejected) {
  EXPECT_FALSE(ForestFromString("a", nullptr).ok());
}

TEST(ForestIoTest, FileRoundTrip) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 4);
  Rng rng(901);
  std::vector<Tree> forest;
  for (int i = 0; i < 25; ++i) {
    forest.push_back(RandomTree(rng.UniformInt(1, 30), pool, dict, rng));
  }
  const std::string path =
      ::testing::TempDir() + "/treesim_forest_io_test.trees";
  ASSERT_TRUE(SaveForest(forest, path).ok());
  auto dict2 = std::make_shared<LabelDictionary>();
  StatusOr<std::vector<Tree>> back = LoadForest(path, dict2);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), forest.size());
  for (size_t i = 0; i < forest.size(); ++i) {
    EXPECT_EQ(ToBracket((*back)[i]), ToBracket(forest[i]));
  }
  std::remove(path.c_str());
}

TEST(ForestIoTest, MissingFileFails) {
  auto dict = std::make_shared<LabelDictionary>();
  StatusOr<std::vector<Tree>> forest =
      LoadForest("/nonexistent/path/x.trees", dict);
  ASSERT_FALSE(forest.ok());
  EXPECT_EQ(forest.status().code(), StatusCode::kNotFound);
}

TEST(ForestIoTest, WriteToBadPathFails) {
  EXPECT_FALSE(WriteStringToFile("x", "/nonexistent/dir/file").ok());
}

}  // namespace
}  // namespace treesim
