#include "tree/tree.h"

#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"

namespace treesim {
namespace {

using testing::MakeTree;

TEST(TreeBuilderTest, SingleNode) {
  auto dict = std::make_shared<LabelDictionary>();
  TreeBuilder b(dict);
  const NodeId root = b.AddRoot("a");
  Tree t = std::move(b).Build();
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.root(), root);
  EXPECT_EQ(t.LabelName(t.root()), "a");
  EXPECT_EQ(t.parent(t.root()), kInvalidNode);
  EXPECT_TRUE(t.is_leaf(t.root()));
  EXPECT_EQ(t.Degree(t.root()), 0);
}

TEST(TreeBuilderTest, ChildrenKeepSiblingOrder) {
  auto dict = std::make_shared<LabelDictionary>();
  TreeBuilder b(dict);
  const NodeId root = b.AddRoot("r");
  const NodeId c1 = b.AddChild(root, "x");
  const NodeId c2 = b.AddChild(root, "y");
  const NodeId c3 = b.AddChild(root, "z");
  Tree t = std::move(b).Build();
  EXPECT_EQ(t.first_child(root), c1);
  EXPECT_EQ(t.next_sibling(c1), c2);
  EXPECT_EQ(t.next_sibling(c2), c3);
  EXPECT_EQ(t.next_sibling(c3), kInvalidNode);
  EXPECT_EQ(t.Children(root), (std::vector<NodeId>{c1, c2, c3}));
  EXPECT_EQ(t.Degree(root), 3);
  EXPECT_EQ(t.parent(c2), root);
}

TEST(TreeBuilderTest, SharedDictionaryAcrossTrees) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t1 = MakeTree("a{b}", dict);
  Tree t2 = MakeTree("b{a}", dict);
  EXPECT_EQ(t1.label_dict().get(), t2.label_dict().get());
  // Same strings, same ids across trees.
  EXPECT_EQ(t1.label(t1.root()), t2.label(t2.first_child(t2.root())));
}

TEST(TreeBuilderDeathTest, DoubleRootAborts) {
  auto dict = std::make_shared<LabelDictionary>();
  TreeBuilder b(dict);
  b.AddRoot("a");
  EXPECT_DEATH(b.AddRoot("b"), "AddRoot called twice");
}

TEST(TreeBuilderDeathTest, BuildWithoutRootAborts) {
  auto dict = std::make_shared<LabelDictionary>();
  TreeBuilder b(dict);
  EXPECT_DEATH(std::move(b).Build(), "without AddRoot");
}

TEST(TreeBuilderDeathTest, BadParentAborts) {
  auto dict = std::make_shared<LabelDictionary>();
  TreeBuilder b(dict);
  b.AddRoot("a");
  EXPECT_DEATH(b.AddChild(5, "b"), "bad parent");
}

TEST(TreeTest, StructurallyEqualsPositive) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b{c d} e}", dict);
  Tree b = MakeTree("a{b{c d} e}", dict);
  EXPECT_TRUE(a.StructurallyEquals(b));
  EXPECT_TRUE(b.StructurallyEquals(a));
  EXPECT_TRUE(a.StructurallyEquals(a));
}

TEST(TreeTest, StructurallyEqualsDetectsLabelChange) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b{c d} e}", dict);
  Tree b = MakeTree("a{b{c x} e}", dict);
  EXPECT_FALSE(a.StructurallyEquals(b));
}

TEST(TreeTest, StructurallyEqualsDetectsShapeChange) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b c}", dict);
  Tree b = MakeTree("a{b{c}}", dict);
  EXPECT_FALSE(a.StructurallyEquals(b));
}

TEST(TreeTest, StructurallyEqualsDetectsSiblingOrder) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b c}", dict);
  Tree b = MakeTree("a{c b}", dict);
  EXPECT_FALSE(a.StructurallyEquals(b));
}

TEST(TreeTest, StructurallyEqualsDetectsSizeDifference) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b}", dict);
  Tree b = MakeTree("a{b b}", dict);
  EXPECT_FALSE(a.StructurallyEquals(b));
}

TEST(TreeTest, EmptyTree) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
}

TEST(TreeTest, DeepChain) {
  auto dict = std::make_shared<LabelDictionary>();
  TreeBuilder b(dict);
  NodeId node = b.AddRoot("n");
  for (int i = 0; i < 50000; ++i) node = b.AddChild(node, "n");
  Tree t = std::move(b).Build();
  EXPECT_EQ(t.size(), 50001);
  int depth = 0;
  for (NodeId n = t.root(); n != kInvalidNode; n = t.first_child(n)) ++depth;
  EXPECT_EQ(depth, 50001);
}

TEST(TreeTest, WideStar) {
  auto dict = std::make_shared<LabelDictionary>();
  TreeBuilder b(dict);
  const NodeId root = b.AddRoot("r");
  for (int i = 0; i < 10000; ++i) b.AddChild(root, "c");
  Tree t = std::move(b).Build();
  EXPECT_EQ(t.Degree(root), 10000);
}

}  // namespace
}  // namespace treesim
