#include "ted/zhang_shasha.h"

#include <memory>

#include "gtest/gtest.h"
#include "ted/naive_ted.h"
#include "test_util.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

int Dist(const std::string& a, const std::string& b) {
  auto dict = std::make_shared<LabelDictionary>();
  return TreeEditDistance(MakeTree(a, dict), MakeTree(b, dict));
}

TEST(TedTreeTest, ViewOfPaperT1) {
  Tree t = MakeTree("a{b{c d} b{c d} e}");
  const TedTree view = TedTree::FromTree(t);
  ASSERT_EQ(view.size(), 8);
  // Postorder: c d b c d b e a.
  const LabelDictionary& dict = *t.label_dict();
  std::string labels;
  for (const LabelId l : view.labels) labels += std::string(dict.Name(l));
  EXPECT_EQ(labels, "cdbcdbea");
  // Leftmost leaves (0-based postorder): c->0 d->1 b->0 c->3 d->4 b->3
  // e->6 a->0.
  EXPECT_EQ(view.lml, (std::vector<int>{0, 1, 0, 3, 4, 3, 6, 0}));
  // Keyroots: nodes with a left sibling, plus the root: d(1), d(4), b(5),
  // e(6), a(7).
  EXPECT_EQ(view.keyroots, (std::vector<int>{1, 4, 5, 6, 7}));
}

TEST(ZhangShashaTest, IdenticalTreesAreZero) {
  EXPECT_EQ(Dist("a", "a"), 0);
  EXPECT_EQ(Dist("a{b{c d} e}", "a{b{c d} e}"), 0);
}

TEST(ZhangShashaTest, SingleRelabel) {
  EXPECT_EQ(Dist("a{b c}", "a{b d}"), 1);
  EXPECT_EQ(Dist("a", "b"), 1);
}

TEST(ZhangShashaTest, SingleInsertDelete) {
  EXPECT_EQ(Dist("a{b}", "a{b c}"), 1);
  EXPECT_EQ(Dist("a{b c}", "a{b}"), 1);
  EXPECT_EQ(Dist("a{b{c}}", "a{c}"), 1);  // delete inner b
}

TEST(ZhangShashaTest, InsertTakingOverChildren) {
  // Insert x under a adopting both children.
  EXPECT_EQ(Dist("a{b c}", "a{x{b c}}"), 1);
  // Insert x adopting only the middle run.
  EXPECT_EQ(Dist("a{b c d}", "a{b x{c} d}"), 1);
}

TEST(ZhangShashaTest, DisjointLabels) {
  // No common labels: relabel min(|T1|,|T2|) + size difference.
  EXPECT_EQ(Dist("a{b c}", "x{y z w}"), 4);
  EXPECT_EQ(Dist("a", "x{y z w}"), 4);
}

TEST(ZhangShashaTest, StructuralReorder) {
  // Sibling order matters for ordered TED.
  EXPECT_EQ(Dist("a{b c}", "a{c b}"), 2);
}

TEST(ZhangShashaTest, ChainVsStar) {
  // a{b{c{d}}} vs a{b c d}: every pair in the chain is ancestor-related but
  // no pair of leaves in the star is, so at most the root plus one node can
  // be mapped: 2 deletions + 2 insertions.
  EXPECT_EQ(Dist("a{b{c{d}}}", "a{b c d}"), 4);
}

TEST(ZhangShashaTest, SizeDifferenceIsLowerBound) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(41);
  for (int trial = 0; trial < 40; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 25), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 25), pool, dict, rng);
    EXPECT_GE(TreeEditDistance(a, b), std::abs(a.size() - b.size()));
    EXPECT_LE(TreeEditDistance(a, b), a.size() + b.size());
  }
}

TEST(ZhangShashaTest, MatchesNaiveOracleOnRandomTrees) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(43);
  for (int trial = 0; trial < 150; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 14), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 14), pool, dict, rng);
    EXPECT_EQ(TreeEditDistance(a, b), NaiveTreeEditDistance(a, b))
        << "trees: " << ToBracket(a) << " vs " << ToBracket(b);
  }
}

TEST(ZhangShashaTest, MatchesNaiveOracleSingleLabel) {
  // Pure structure distance (all labels equal) stresses the forest DP.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 1);
  Rng rng(47);
  for (int trial = 0; trial < 80; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 12), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 12), pool, dict, rng);
    EXPECT_EQ(TreeEditDistance(a, b), NaiveTreeEditDistance(a, b))
        << "trees: " << ToBracket(a) << " vs " << ToBracket(b);
  }
}

TEST(ZhangShashaTest, MetricAxiomsOnRandomTriples) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(53);
  for (int trial = 0; trial < 30; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 18), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 18), pool, dict, rng);
    Tree c = RandomTree(rng.UniformInt(1, 18), pool, dict, rng);
    const int ab = TreeEditDistance(a, b);
    const int ba = TreeEditDistance(b, a);
    const int ac = TreeEditDistance(a, c);
    const int cb = TreeEditDistance(c, b);
    EXPECT_EQ(ab, ba);                      // symmetry
    EXPECT_LE(ab, ac + cb);                 // triangle inequality
    EXPECT_EQ(TreeEditDistance(a, a), 0);   // identity
    EXPECT_GE(ab, 0);
  }
}

TEST(ZhangShashaTest, PrecomputedViewMatchesConvenienceOverload) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b{c} d}", dict);
  Tree b = MakeTree("a{b c{d}}", dict);
  const TedTree va = TedTree::FromTree(a);
  const TedTree vb = TedTree::FromTree(b);
  EXPECT_EQ(TreeEditDistance(va, vb), TreeEditDistance(a, b));
}

TEST(ZhangShashaTest, LargerTreesRun) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 8);
  Rng rng(59);
  Tree a = RandomTree(300, pool, dict, rng);
  Tree b = RandomTree(320, pool, dict, rng);
  const int d = TreeEditDistance(a, b);
  EXPECT_GE(d, 20);  // at least the size difference
  EXPECT_LE(d, 620);
}

TEST(WeightedTedTest, UnitModelMatchesIntegerPath) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(61);
  for (int trial = 0; trial < 30; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 20), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 20), pool, dict, rng);
    const TedTree va = TedTree::FromTree(a);
    const TedTree vb = TedTree::FromTree(b);
    EXPECT_DOUBLE_EQ(
        TreeEditDistanceWeighted(va, vb, UnitCostModel::Get()),
        static_cast<double>(TreeEditDistance(va, vb)));
  }
}

// Doubling every op cost doubles the distance.
class DoubledCostModel final : public CostModel {
 public:
  double Relabel(LabelId a, LabelId b) const override {
    return a == b ? 0.0 : 2.0;
  }
  double Insert(LabelId) const override { return 2.0; }
  double Delete(LabelId) const override { return 2.0; }
  double MinOperationCost() const override { return 2.0; }
};

TEST(WeightedTedTest, ScalesLinearlyWithCosts) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b{c d} b{c d} e}", dict);
  Tree b = MakeTree("a{b{c d b{e}} c d e}", dict);
  const TedTree va = TedTree::FromTree(a);
  const TedTree vb = TedTree::FromTree(b);
  EXPECT_DOUBLE_EQ(TreeEditDistanceWeighted(va, vb, DoubledCostModel()),
                   2.0 * TreeEditDistance(va, vb));
}

// Cheap relabels change the optimal script structure.
class CheapRelabelModel final : public CostModel {
 public:
  double Relabel(LabelId a, LabelId b) const override {
    return a == b ? 0.0 : 0.1;
  }
  double MinOperationCost() const override { return 0.1; }
};

TEST(WeightedTedTest, CheapRelabelPrefersRelabeling) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b c}", dict);
  Tree b = MakeTree("x{y z}", dict);
  const TedTree va = TedTree::FromTree(a);
  const TedTree vb = TedTree::FromTree(b);
  EXPECT_NEAR(TreeEditDistanceWeighted(va, vb, CheapRelabelModel()), 0.3,
              1e-9);
}

}  // namespace
}  // namespace treesim
