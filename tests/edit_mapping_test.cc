#include "ted/edit_mapping.h"

#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"
#include "ted/zhang_shasha.h"
#include "tree/bracket.h"
#include "tree/traversal.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

TEST(EditMappingTest, IdenticalTreesMapEverything) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b{c d} e}", dict);
  Tree b = MakeTree("a{b{c d} e}", dict);
  const EditMapping m = ComputeEditMapping(a, b);
  EXPECT_EQ(m.cost, 0);
  EXPECT_EQ(static_cast<int>(m.pairs.size()), a.size());
  EXPECT_EQ(m.relabels, 0);
  EXPECT_EQ(m.deletions, 0);
  EXPECT_EQ(m.insertions, 0);
  EXPECT_EQ(ValidateEditMapping(a, b, m), "");
}

TEST(EditMappingTest, SingleRelabel) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b c}", dict);
  Tree b = MakeTree("a{x c}", dict);
  const EditMapping m = ComputeEditMapping(a, b);
  EXPECT_EQ(m.cost, 1);
  EXPECT_EQ(m.relabels, 1);
  EXPECT_EQ(m.deletions, 0);
  EXPECT_EQ(m.insertions, 0);
  EXPECT_EQ(ValidateEditMapping(a, b, m), "");
}

TEST(EditMappingTest, PureDeletion) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b{c d} e}", dict);
  Tree b = MakeTree("a{c d e}", dict);  // b deleted
  const EditMapping m = ComputeEditMapping(a, b);
  EXPECT_EQ(m.cost, 1);
  EXPECT_EQ(m.relabels, 0);
  EXPECT_EQ(m.deletions, 1);
  EXPECT_EQ(m.insertions, 0);
  EXPECT_EQ(ValidateEditMapping(a, b, m), "");
}

TEST(EditMappingTest, PaperExamplePair) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b{c d} b{c d} e}", dict);
  Tree b = MakeTree("a{b{c d b{e}} c d e}", dict);
  const EditMapping m = ComputeEditMapping(a, b);
  EXPECT_EQ(m.cost, TreeEditDistance(a, b));
  EXPECT_EQ(m.cost, 3);
  EXPECT_EQ(ValidateEditMapping(a, b, m), "");
}

TEST(EditMappingTest, CostAlwaysMatchesDistanceOnRandomPairs) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(601);
  for (int trial = 0; trial < 120; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 28), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 28), pool, dict, rng);
    const EditMapping m = ComputeEditMapping(a, b);
    EXPECT_EQ(m.cost, TreeEditDistance(a, b))
        << ToBracket(a) << " vs " << ToBracket(b);
    EXPECT_EQ(ValidateEditMapping(a, b, m), "")
        << ToBracket(a) << " vs " << ToBracket(b);
  }
}

TEST(EditMappingTest, SingleLabelStructuralPairs) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 1);
  Rng rng(607);
  for (int trial = 0; trial < 60; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 15), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 15), pool, dict, rng);
    const EditMapping m = ComputeEditMapping(a, b);
    EXPECT_EQ(m.cost, TreeEditDistance(a, b));
    EXPECT_EQ(ValidateEditMapping(a, b, m), "");
    EXPECT_EQ(m.relabels, 0);  // only one label exists
  }
}

TEST(EditMappingTest, Proposition41_PositionDisplacementBoundedByDistance) {
  // The direct statement of Proposition 4.1: in an optimal mapping, a T1
  // node can only map to a T2 node whose preorder and postorder positions
  // differ by at most EDist.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 4);
  Rng rng(613);
  for (int trial = 0; trial < 80; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 30), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 30), pool, dict, rng);
    const EditMapping m = ComputeEditMapping(a, b);
    const TraversalPositions pa = ComputePositions(a);
    const TraversalPositions pb = ComputePositions(b);
    for (const auto& [u, v] : m.pairs) {
      EXPECT_LE(std::abs(pa.pre[static_cast<size_t>(u)] -
                         pb.pre[static_cast<size_t>(v)]),
                m.cost)
          << ToBracket(a) << " vs " << ToBracket(b);
      EXPECT_LE(std::abs(pa.post[static_cast<size_t>(u)] -
                         pb.post[static_cast<size_t>(v)]),
                m.cost)
          << ToBracket(a) << " vs " << ToBracket(b);
    }
  }
}

TEST(EditMappingTest, MappedPairsSortedByT1Postorder) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(617);
  Tree a = RandomTree(25, pool, dict, rng);
  Tree b = RandomTree(25, pool, dict, rng);
  const EditMapping m = ComputeEditMapping(a, b);
  const TraversalPositions pa = ComputePositions(a);
  for (size_t i = 1; i < m.pairs.size(); ++i) {
    EXPECT_LT(pa.post[static_cast<size_t>(m.pairs[i - 1].first)],
              pa.post[static_cast<size_t>(m.pairs[i].first)]);
  }
}

TEST(EditMappingValidateTest, DetectsBrokenMappings) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree a = MakeTree("a{b c}", dict);
  Tree b = MakeTree("a{b c}", dict);
  EditMapping m = ComputeEditMapping(a, b);
  ASSERT_EQ(ValidateEditMapping(a, b, m), "");

  EditMapping twice = m;
  twice.pairs.push_back(twice.pairs[0]);
  EXPECT_NE(ValidateEditMapping(a, b, twice), "");

  EditMapping bad_cost = m;
  bad_cost.cost += 1;
  EXPECT_NE(ValidateEditMapping(a, b, bad_cost), "");

  // Swap two T2 targets: breaks order preservation.
  EditMapping swapped = m;
  ASSERT_GE(swapped.pairs.size(), 2u);
  std::swap(swapped.pairs[0].second, swapped.pairs[1].second);
  EXPECT_NE(ValidateEditMapping(a, b, swapped), "");
}

}  // namespace
}  // namespace treesim
