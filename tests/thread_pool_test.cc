#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "util/sync.h"

namespace treesim {
namespace {

TEST(ClampThreadsTest, NonPositiveRequestPicksHardware) {
  EXPECT_EQ(ClampThreads(0, 1000), ThreadPool::HardwareThreads());
  EXPECT_EQ(ClampThreads(-3, 1000), ThreadPool::HardwareThreads());
}

TEST(ClampThreadsTest, ClampedToItems) {
  EXPECT_EQ(ClampThreads(8, 3), 3);
  EXPECT_EQ(ClampThreads(8, 8), 8);
  EXPECT_EQ(ClampThreads(2, 100), 2);
}

TEST(ClampThreadsTest, AtLeastOne) {
  EXPECT_EQ(ClampThreads(8, 0), 1);
  EXPECT_EQ(ClampThreads(0, 0), 1);
  EXPECT_EQ(ClampThreads(1, 5), 1);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ThreadPoolTest, ScheduleRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  // The destructor drains the queue before joining, so after scope exit
  // every task must have run.
  {
    ThreadPool inner(2);
    for (int i = 0; i < 50; ++i) {
      inner.Schedule([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  // Give the outer pool's tasks a synchronization point: ParallelFor only
  // returns when its own tasks finish, and FIFO order means the 100
  // scheduled tasks run first.
  pool.ParallelFor(1, [](int64_t) {});
  EXPECT_EQ(ran.load(), 150);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&hits](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEdgeCases) {
  ThreadPool pool(3);
  int ran = 0;
  pool.ParallelFor(0, [&ran](int64_t) { ++ran; });
  EXPECT_EQ(ran, 0);
  // n == 1 with a live pool still runs (on some worker).
  std::atomic<int> one{0};
  pool.ParallelFor(1, [&one](int64_t i) {
    EXPECT_EQ(i, 0);
    one.fetch_add(1);
  });
  EXPECT_EQ(one.load(), 1);
}

TEST(ThreadPoolTest, FreeParallelForInlineWithoutPool) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&order](int64_t i) {
    order.push_back(static_cast<int>(i));  // inline => sequential, in order
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, FreeParallelForUsesPool) {
  ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  ParallelFor(&pool, 100, [&sum](int64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossParallelFors) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(64, [&count](int64_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 64);
  }
}

TEST(ThreadPoolTest, InWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.InWorkerThread());
  std::atomic<int> inside{0};
  pool.ParallelFor(8, [&pool, &inside](int64_t) {
    if (pool.InWorkerThread()) inside.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(inside.load(), 8);
}

TEST(MutexTest, GuardsSharedCounter) {
  Mutex mu;
  int64_t counter = 0;
  ThreadPool pool(4);
  pool.ParallelFor(1000, [&mu, &counter](int64_t) {
    MutexLock lock(mu);
    ++counter;
  });
  MutexLock lock(mu);
  EXPECT_EQ(counter, 1000);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  EXPECT_TRUE(mu.TryLock());
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  MutexLock lock(mu);  // relockable after Unlock()
}

// Stress shape for TSan: many small ParallelFors with mixed shared state
// (atomic + mutex-guarded) from alternating rounds.
TEST(ThreadPoolTest, StressMixedRounds) {
  ThreadPool pool(8);
  Mutex mu;
  int64_t guarded = 0;
  std::atomic<int64_t> relaxed{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(97, [&](int64_t i) {
      relaxed.fetch_add(i, std::memory_order_relaxed);
      MutexLock lock(mu);
      guarded += 1;
    });
  }
  MutexLock lock(mu);
  EXPECT_EQ(guarded, 50 * 97);
  EXPECT_EQ(relaxed.load(), 50 * (96 * 97 / 2));
}

}  // namespace
}  // namespace treesim
