#include "core/inverted_file.h"

#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

TEST(InvertedFileTest, AddAssignsDenseIds) {
  auto dict = std::make_shared<LabelDictionary>();
  InvertedFileIndex index(2);
  EXPECT_EQ(index.Add(MakeTree("a{b}", dict)), 0);
  EXPECT_EQ(index.Add(MakeTree("a{c}", dict)), 1);
  EXPECT_EQ(index.tree_count(), 2);
}

TEST(InvertedFileTest, PostingsMatchPaperInvertedFile) {
  // Fig. 3(a): the inverted list of c(ε,d) holds T1 with count 2 and T2
  // with count 2; b(c,b) holds only T1; b(c,c) holds only T2.
  auto dict = std::make_shared<LabelDictionary>();
  InvertedFileIndex index(2);
  index.Add(MakeTree("a{b{c d} b{c d} e}", dict));  // T1 (id 0)
  index.Add(MakeTree("a{b{c d b{e}} c d e}", dict));  // T2 (id 1)

  auto find_branch = [&](const std::string& name) -> BranchId {
    for (BranchId id = 0; id < index.branch_dict().size(); ++id) {
      if (index.branch_dict().Name(id, *dict) == name) return id;
    }
    ADD_FAILURE() << "branch not found: " << name;
    return 0;
  };

  const auto& c_list = index.postings(find_branch("c(\xCE\xB5,d)"));
  ASSERT_EQ(c_list.size(), 2u);
  EXPECT_EQ(c_list[0].tree_id, 0);
  EXPECT_EQ(c_list[0].count(), 2);
  EXPECT_EQ(c_list[1].tree_id, 1);
  EXPECT_EQ(c_list[1].count(), 2);
  // Positions of c(ε,d) in T1: (3,1) and (6,4).
  EXPECT_EQ(c_list[0].positions,
            (std::vector<std::pair<int, int>>{{3, 1}, {6, 4}}));

  EXPECT_EQ(index.TreesContaining(find_branch("b(c,b)")),
            std::vector<int>{0});
  EXPECT_EQ(index.TreesContaining(find_branch("b(c,c)")),
            std::vector<int>{1});
  EXPECT_EQ(index.TreesContaining(find_branch("a(b,\xCE\xB5)")),
            (std::vector<int>{0, 1}));
}

TEST(InvertedFileTest, BuildProfilesMatchesDirectExtraction) {
  // Algorithm 1's IFI scan must produce exactly the profiles that direct
  // per-tree extraction produces.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 4);
  Rng rng(311);
  InvertedFileIndex index(2);
  std::vector<Tree> trees;
  for (int i = 0; i < 30; ++i) {
    trees.push_back(RandomTree(rng.UniformInt(1, 40), pool, dict, rng));
    index.Add(trees.back());
  }
  const std::vector<BranchProfile> profiles = index.BuildProfiles();
  ASSERT_EQ(profiles.size(), trees.size());
  for (size_t i = 0; i < trees.size(); ++i) {
    const BranchProfile direct =
        BranchProfile::FromTree(trees[i], index.branch_dict());
    ASSERT_EQ(profiles[i].entries.size(), direct.entries.size()) << i;
    EXPECT_EQ(profiles[i].tree_size, direct.tree_size);
    EXPECT_EQ(profiles[i].q, direct.q);
    EXPECT_EQ(profiles[i].factor, direct.factor);
    for (size_t e = 0; e < direct.entries.size(); ++e) {
      EXPECT_EQ(profiles[i].entries[e].branch, direct.entries[e].branch);
      EXPECT_EQ(profiles[i].entries[e].occurrences,
                direct.entries[e].occurrences);
      EXPECT_EQ(profiles[i].entries[e].posts_sorted,
                direct.entries[e].posts_sorted);
    }
  }
}

TEST(InvertedFileTest, VocabularySizeBoundedByTotalNodes) {
  // Section 4.4: the vocabulary is at most sum |Ti|.
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 2);
  Rng rng(313);
  InvertedFileIndex index(2);
  int64_t total_nodes = 0;
  for (int i = 0; i < 50; ++i) {
    Tree t = RandomTree(rng.UniformInt(1, 30), pool, dict, rng);
    total_nodes += t.size();
    index.Add(t);
  }
  EXPECT_LE(static_cast<int64_t>(index.branch_dict().size()), total_nodes);
}

TEST(InvertedFileTest, QLevelIndexing) {
  auto dict = std::make_shared<LabelDictionary>();
  InvertedFileIndex index(3);
  index.Add(MakeTree("a{b{c}}", dict));
  EXPECT_EQ(index.branch_dict().q(), 3);
  const std::vector<BranchProfile> profiles = index.BuildProfiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].factor, 9);
  EXPECT_EQ(profiles[0].total_count(), 3);
}

TEST(InvertedFileTest, EmptyIndexBuildsNoProfiles) {
  InvertedFileIndex index(2);
  EXPECT_EQ(index.tree_count(), 0);
  EXPECT_TRUE(index.BuildProfiles().empty());
}

}  // namespace
}  // namespace treesim
