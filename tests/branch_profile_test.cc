#include "core/branch_profile.h"

#include <memory>

#include "gtest/gtest.h"
#include "test_util.h"
#include "ted/zhang_shasha.h"

namespace treesim {
namespace {

using testing::MakeLabelPool;
using testing::MakeTree;
using testing::RandomTree;

TEST(BranchProfileTest, EntriesSortedWithPositions) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b{c d} b{c d} e}", dict);
  BranchDictionary branches(2);
  const BranchProfile p = BranchProfile::FromTree(t, branches);
  EXPECT_EQ(p.tree_size, 8);
  EXPECT_EQ(p.q, 2);
  EXPECT_EQ(p.factor, 5);
  EXPECT_EQ(p.total_count(), 8);
  for (size_t i = 1; i < p.entries.size(); ++i) {
    EXPECT_LT(p.entries[i - 1].branch, p.entries[i].branch);
  }
  for (const BranchEntry& e : p.entries) {
    ASSERT_EQ(e.posts_sorted.size(), e.occurrences.size());
    for (size_t i = 1; i < e.occurrences.size(); ++i) {
      EXPECT_LT(e.occurrences[i - 1].first, e.occurrences[i].first);
      EXPECT_LE(e.posts_sorted[i - 1], e.posts_sorted[i]);
    }
  }
}

TEST(BranchDistanceTest, PaperExampleIsNine) {
  // From the Fig. 3(b) vectors: |BRV(T1) - BRV(T2)|_1 = 9.
  auto dict = std::make_shared<LabelDictionary>();
  Tree t1 = MakeTree("a{b{c d} b{c d} e}", dict);
  Tree t2 = MakeTree("a{b{c d b{e}} c d e}", dict);
  BranchDictionary branches(2);
  const BranchProfile p1 = BranchProfile::FromTree(t1, branches);
  const BranchProfile p2 = BranchProfile::FromTree(t2, branches);
  EXPECT_EQ(BranchDistance(p1, p2), 9);
  EXPECT_EQ(BranchDistance(p2, p1), 9);
  EXPECT_EQ(BranchDistanceLowerBound(p1, p2), 2);  // ceil(9/5)
}

TEST(BranchDistanceTest, IdenticalTreesAreZero) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t1 = MakeTree("a{b{c} d}", dict);
  Tree t2 = MakeTree("a{b{c} d}", dict);
  BranchDictionary branches(2);
  const BranchProfile p1 = BranchProfile::FromTree(t1, branches);
  const BranchProfile p2 = BranchProfile::FromTree(t2, branches);
  EXPECT_EQ(BranchDistance(p1, p2), 0);
}

TEST(BranchDistanceTest, NotAMetric_DistinctTreesWithZeroDistance) {
  // The Fig. 4 phenomenon: BDist is a pseudo-metric. These two trees have
  // identical branch multisets {r(a,ε), a(b,b), b(ε,ε), b(a,ε), a(ε,ε)}.
  auto dict = std::make_shared<LabelDictionary>();
  Tree t1 = MakeTree("r{a{b} b{a}}", dict);
  Tree t2 = MakeTree("r{a{b{a}} b}", dict);
  BranchDictionary branches(2);
  const BranchProfile p1 = BranchProfile::FromTree(t1, branches);
  const BranchProfile p2 = BranchProfile::FromTree(t2, branches);
  EXPECT_EQ(BranchDistance(p1, p2), 0);
  EXPECT_FALSE(t1.StructurallyEquals(t2));
  EXPECT_GT(TreeEditDistance(t1, t2), 0);
}

TEST(BranchDistanceTest, ThreeLevelBranchesSeparateTheZeroPair) {
  // Higher q encodes more structure (Section 3.4): the same pair is
  // distinguished at q = 3.
  auto dict = std::make_shared<LabelDictionary>();
  Tree t1 = MakeTree("r{a{b} b{a}}", dict);
  Tree t2 = MakeTree("r{a{b{a}} b}", dict);
  BranchDictionary branches(3);
  const BranchProfile p1 = BranchProfile::FromTree(t1, branches);
  const BranchProfile p2 = BranchProfile::FromTree(t2, branches);
  EXPECT_GT(BranchDistance(p1, p2), 0);
}

TEST(BranchDistanceTest, MetricPropertiesOnRandomTrees) {
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(89);
  BranchDictionary branches(2);
  for (int trial = 0; trial < 30; ++trial) {
    Tree a = RandomTree(rng.UniformInt(1, 30), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(1, 30), pool, dict, rng);
    Tree c = RandomTree(rng.UniformInt(1, 30), pool, dict, rng);
    const BranchProfile pa = BranchProfile::FromTree(a, branches);
    const BranchProfile pb = BranchProfile::FromTree(b, branches);
    const BranchProfile pc = BranchProfile::FromTree(c, branches);
    const int64_t ab = BranchDistance(pa, pb);
    EXPECT_EQ(ab, BranchDistance(pb, pa));                    // symmetry
    EXPECT_EQ(BranchDistance(pa, pa), 0);                     // identity
    EXPECT_LE(ab, BranchDistance(pa, pc) + BranchDistance(pc, pb));
    EXPECT_GE(ab, 0);
  }
}

TEST(BranchDistanceTest, DisjointVocabulariesSumCounts) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t1 = MakeTree("a{a a}", dict);
  Tree t2 = MakeTree("x{y{z}}", dict);
  BranchDictionary branches(2);
  const BranchProfile p1 = BranchProfile::FromTree(t1, branches);
  const BranchProfile p2 = BranchProfile::FromTree(t2, branches);
  EXPECT_EQ(BranchDistance(p1, p2), t1.size() + t2.size());
}

TEST(BranchDistanceTest, HigherLevelsGrowTheDistance) {
  // BDist_Q is non-decreasing in q for a fixed pair (more structure in each
  // branch means fewer accidental matches).
  auto dict = std::make_shared<LabelDictionary>();
  const std::vector<LabelId> pool = MakeLabelPool(dict, 3);
  Rng rng(97);
  for (int trial = 0; trial < 15; ++trial) {
    Tree a = RandomTree(rng.UniformInt(2, 25), pool, dict, rng);
    Tree b = RandomTree(rng.UniformInt(2, 25), pool, dict, rng);
    int64_t prev = -1;
    for (int q = 2; q <= 4; ++q) {
      BranchDictionary branches(q);
      const int64_t d =
          BranchDistance(BranchProfile::FromTree(a, branches),
                         BranchProfile::FromTree(b, branches));
      if (prev >= 0) {
        EXPECT_GE(d, prev);
      }
      prev = d;
    }
  }
}

TEST(BranchDistanceDeathTest, MixedLevelsAbort) {
  auto dict = std::make_shared<LabelDictionary>();
  Tree t = MakeTree("a{b}", dict);
  BranchDictionary b2(2);
  BranchDictionary b3(3);
  const BranchProfile p2 = BranchProfile::FromTree(t, b2);
  const BranchProfile p3 = BranchProfile::FromTree(t, b3);
  EXPECT_DEATH((void)BranchDistance(p2, p3), "different levels");
}

}  // namespace
}  // namespace treesim
