// Fallback driver for toolchains without libFuzzer (e.g. GCC): replays
// files or directories of files through LLVMFuzzerTestOneInput, one process
// for the whole set. Used by the fuzz smoke tests in ctest so the harness
// contracts are exercised on every corpus seed even where coverage-guided
// fuzzing is unavailable. With clang, fuzz/CMakeLists.txt links
// -fsanitize=fuzzer instead and this file is not compiled.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int ReplayFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus file or directory>...\n", argv[0]);
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path p(argv[i]);
    // libFuzzer flags (e.g. -runs=0 from a shared ctest invocation) are
    // meaningless here; skip them instead of failing.
    if (!p.empty() && p.string()[0] == '-') continue;
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (!entry.is_regular_file()) continue;
        if (ReplayFile(entry.path().string()) != 0) return 1;
        ++replayed;
      }
    } else {
      if (ReplayFile(p.string()) != 0) return 1;
      ++replayed;
    }
  }
  std::fprintf(stderr, "replayed %d corpus input(s), no failures\n",
               replayed);
  return 0;
}
