// libFuzzer harness for the bounded-TED refine engine (ted/bounded_ted.h).
//
// Input layout: byte 0 seeds the threshold choice; the rest splits at the
// first '\n' into two bracket-notation trees. On every accepted pair the
// harness sweeps thresholds across the interesting boundary (below, at and
// above the true distance, plus the degenerate extremes) and asserts the
// bounded verifier's contract against the unbounded Zhang–Shasha kernel:
//   - result == min(EDist, tau + 1) for every tau >= 0,
//   - the weighted variant under unit costs agrees bit-for-bit at
//     tau = EDist and rejects with a value > tau below it,
//   - on small pairs the independent O(n^4) naive oracle agrees with the
//     Zhang–Shasha reference itself (differential anchor inside the fuzz
//     loop, so a corpus minimized against one kernel cannot mask the
//     other).
//
// Built with -fsanitize=fuzzer under clang; with other toolchains the
// standalone driver in standalone_main.cc replays corpus files through the
// same entry point (see fuzz/CMakeLists.txt).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>

#include "ted/bounded_ted.h"
#include "ted/cost_model.h"
#include "ted/naive_ted.h"
#include "ted/zhang_shasha.h"
#include "tree/bracket.h"
#include "tree/tree.h"
#include "util/logging.h"
#include "util/status.h"

namespace {

// The DP is O(n^2 * keyroots^2); bigger trees only slow the fuzzer down
// without reaching new code.
constexpr int kMaxNodes = 48;
// The naive oracle is O(n^4) with memoization — affordable only on small
// pairs.
constexpr int kMaxNaiveNodes = 24;
constexpr size_t kMaxInputBytes = 1 << 12;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 2 || size > kMaxInputBytes) return 0;
  const uint8_t tau_byte = data[0];
  const std::string_view rest(reinterpret_cast<const char*>(data + 1),
                              size - 1);
  const size_t split = rest.find('\n');
  if (split == std::string_view::npos) return 0;

  const auto labels = std::make_shared<treesim::LabelDictionary>();
  treesim::StatusOr<treesim::Tree> parsed1 =
      treesim::ParseBracket(rest.substr(0, split), labels);
  if (!parsed1.ok()) return 0;
  treesim::StatusOr<treesim::Tree> parsed2 =
      treesim::ParseBracket(rest.substr(split + 1), labels);
  if (!parsed2.ok()) return 0;
  const treesim::Tree& t1 = parsed1.value();
  const treesim::Tree& t2 = parsed2.value();
  if (t1.size() > kMaxNodes || t2.size() > kMaxNodes) return 0;

  const treesim::TedTree v1 = treesim::TedTree::FromTree(t1);
  const treesim::TedTree v2 = treesim::TedTree::FromTree(t2);
  const int exact = treesim::TreeEditDistance(v1, v2);
  const int n_sum = t1.size() + t2.size();
  TREESIM_CHECK(exact >= 0 && exact <= n_sum);

  if (t1.size() <= kMaxNaiveNodes && t2.size() <= kMaxNaiveNodes) {
    const int naive = treesim::NaiveTreeEditDistance(t1, t2);
    TREESIM_CHECK_EQ(naive, exact)
        << "oracle disagreement |T1|=" << t1.size() << " |T2|=" << t2.size();
  }

  const int taus[] = {0,         1,
                      exact - 1, exact,
                      exact + 1, static_cast<int>(tau_byte) % (n_sum + 2),
                      n_sum,     std::numeric_limits<int>::max()};
  for (const int tau : taus) {
    if (tau < 0) continue;
    const int bounded = treesim::BoundedTreeEditDistance(v1, v2, tau);
    const int expected = tau < exact ? tau + 1 : exact;
    TREESIM_CHECK_EQ(bounded, expected)
        << "tau=" << tau << " EDist=" << exact << " |T1|=" << t1.size()
        << " |T2|=" << t2.size();
  }
  TREESIM_CHECK_EQ(treesim::BoundedTreeEditDistance(v1, v2, -1), 0);

  const treesim::CostModel& unit = treesim::UnitCostModel::Get();
  const double wexact = static_cast<double>(exact);
  TREESIM_CHECK_EQ(
      treesim::BoundedTreeEditDistanceWeighted(v1, v2, wexact, unit), wexact);
  if (exact > 0) {
    const double tight = wexact - 0.5;
    TREESIM_CHECK(
        treesim::BoundedTreeEditDistanceWeighted(v1, v2, tight, unit) > tight);
  }
  return 0;
}
