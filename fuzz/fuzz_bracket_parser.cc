// libFuzzer harness for the bracket-notation parser (tree/bracket.h).
//
// Beyond "don't crash / don't trip a sanitizer", the harness asserts the
// parser's behavioral contract on every accepted input:
//   - the parsed tree satisfies Tree::ValidateInvariants(),
//   - ToBracket() round-trips: serializing and reparsing yields a
//     structurally identical tree,
//   - small accepted trees produce a valid branch profile (the downstream
//     structure every filter consumes).
//
// Built with -fsanitize=fuzzer under clang; with other toolchains the
// standalone driver in standalone_main.cc replays corpus files through the
// same entry point (see fuzz/CMakeLists.txt).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "core/branch_profile.h"
#include "tree/bracket.h"
#include "tree/tree.h"
#include "util/logging.h"
#include "util/status.h"

namespace {

// Inputs larger than this are legal but slow; the parser is O(n), so long
// inputs only dilute coverage-guided search.
constexpr size_t kMaxInputBytes = 1 << 16;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInputBytes) return 0;
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  const auto labels = std::make_shared<treesim::LabelDictionary>();
  treesim::StatusOr<treesim::Tree> parsed =
      treesim::ParseBracket(text, labels);
  if (!parsed.ok()) return 0;  // rejection is a valid outcome

  const treesim::Tree& tree = parsed.value();
  TREESIM_CHECK_OK(tree.ValidateInvariants());

  const std::string serialized = treesim::ToBracket(tree);
  treesim::StatusOr<treesim::Tree> reparsed =
      treesim::ParseBracket(serialized, labels);
  TREESIM_CHECK(reparsed.ok())
      << "ToBracket produced unparseable output: " << reparsed.status()
      << " for \"" << serialized << "\"";
  TREESIM_CHECK(tree.StructurallyEquals(*reparsed))
      << "bracket round-trip changed the tree: \"" << serialized << "\"";

  if (tree.size() <= 256) {
    treesim::BranchDictionary dict(2);
    TREESIM_CHECK_OK(
        treesim::BranchProfile::FromTree(tree, dict).ValidateInvariants());
  }
  return 0;
}
