// libFuzzer harness for the XML parser (xml/xml_parser.h).
//
// Every accepted document must produce a tree that passes
// Tree::ValidateInvariants() under all three option profiles the library
// supports (ignore text / text as leaves / attributes included), and
// ToXml() must serialize it without crashing. ToXml is a debug renderer,
// not a round-tripper, so reparse of its output is exercised but allowed
// to fail.
//
// Built with -fsanitize=fuzzer under clang; with other toolchains the
// standalone driver in standalone_main.cc replays corpus files through the
// same entry point (see fuzz/CMakeLists.txt).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "tree/tree.h"
#include "util/logging.h"
#include "util/status.h"
#include "xml/xml_parser.h"

namespace {

constexpr size_t kMaxInputBytes = 1 << 16;

void ParseWith(std::string_view xml, const treesim::XmlParseOptions& options) {
  const auto labels = std::make_shared<treesim::LabelDictionary>();
  treesim::StatusOr<treesim::Tree> parsed =
      treesim::ParseXml(xml, labels, options);
  if (!parsed.ok()) return;
  const treesim::Tree& tree = parsed.value();
  TREESIM_CHECK_OK(tree.ValidateInvariants());
  const std::string rendered = treesim::ToXml(tree);
  // Best-effort reparse: labels may not be valid XML names, so failure is
  // fine — but a successful reparse must again be a valid tree.
  treesim::StatusOr<treesim::Tree> reparsed =
      treesim::ParseXml(rendered, labels, options);
  if (reparsed.ok()) TREESIM_CHECK_OK(reparsed->ValidateInvariants());
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInputBytes) return 0;
  const std::string_view xml(reinterpret_cast<const char*>(data), size);

  treesim::XmlParseOptions structure_only;
  structure_only.text_mode = treesim::XmlParseOptions::TextMode::kIgnore;
  ParseWith(xml, structure_only);

  treesim::XmlParseOptions with_text;  // defaults: text as leaves
  ParseWith(xml, with_text);

  treesim::XmlParseOptions with_attributes;
  with_attributes.include_attributes = true;
  ParseWith(xml, with_attributes);
  return 0;
}
